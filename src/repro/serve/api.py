"""The experiment service's versioned JSON API, free of any socket.

:class:`ServeApi` maps ``(method, path, query, body)`` to
``(status, payload)`` — nothing else.  The HTTP layer
(:mod:`repro.serve.server`) is a thin shell around :meth:`ServeApi.handle`,
which keeps every route unit-testable without binding a port and keeps
exactly one place that decides status codes and error shapes.

Routes (all JSON; errors are ``{"error": {"code", "message"}}``):

=======  ==========================  =========================================
Method   Path                        Meaning
=======  ==========================  =========================================
GET      /v1/health                  liveness + store/job counters
GET      /v1/registry                algorithm + scheduler registry dump
GET      /v1/store/digest            ``RunStore.digest()`` (the identity gate)
GET      /v1/runs                    query archived runs (filters, pagination)
GET      /v1/runs/{hash}             one archived record (prefix allowed)
GET      /v1/failures                archived failure hashes
GET      /v1/failures/{hash}         one failure artifact (prefix allowed)
GET      /v1/quarantine              quarantined-unit hashes
GET      /v1/quarantine/{hash}       one quarantine artifact (prefix allowed)
POST     /v1/jobs                    submit a spec → 202 + job resource
GET      /v1/jobs                    all jobs, oldest first
GET      /v1/jobs/{id}               one job with live progress
=======  ==========================  =========================================

Reads are served from a :meth:`~repro.store.RunStore.snapshot` taken
after a :meth:`~repro.store.RunStore.refresh`, so a query paginating
while sweep jobs write sees one consistent frontier per request —
never a torn view.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from repro import __version__
from repro.errors import ReproError
from repro.serve.jobs import JobManager
from repro.store import RunStore

__all__ = ["ServeApi", "error_payload"]

#: Filters /v1/runs accepts, mapped to RunStore.query keywords.
_RUN_FILTERS = {
    "algorithm": ("algorithm", str),
    "scheduler": ("scheduler", str),
    "n": ("ring_size", int),
    "k": ("agent_count", int),
    "uniform": ("uniform", None),  # parsed as bool below
    "hash": ("hash_prefix", str),
}

#: Cap on one /v1/runs page: full records are heavy, and a client that
#: wants everything pages for it.
_MAX_PAGE = 500
_DEFAULT_PAGE = 100


def error_payload(code: str, message: str, **extra) -> Dict[str, object]:
    payload: Dict[str, object] = {"error": {"code": code, "message": message}}
    payload["error"].update(extra)
    return payload


class _ApiError(Exception):
    def __init__(self, status: int, code: str, message: str, **extra) -> None:
        super().__init__(message)
        self.status = status
        self.payload = error_payload(code, message, **extra)


def _parse_bool(raw: str, name: str) -> bool:
    lowered = raw.lower()
    if lowered in ("1", "true", "yes"):
        return True
    if lowered in ("0", "false", "no"):
        return False
    raise _ApiError(
        400, "bad_request", f"query parameter {name!r} must be a boolean, "
        f"got {raw!r}"
    )


def _parse_int(raw: str, name: str, minimum: Optional[int] = None) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise _ApiError(
            400, "bad_request",
            f"query parameter {name!r} must be an integer, got {raw!r}",
        ) from None
    if minimum is not None and value < minimum:
        raise _ApiError(
            400, "bad_request",
            f"query parameter {name!r} must be >= {minimum}, got {value}",
        )
    return value


class ServeApi:
    """Route dispatch for the experiment service (no sockets here)."""

    def __init__(self, store: RunStore, jobs: JobManager) -> None:
        self.store = store
        self.jobs = jobs

    # -- entry point ---------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        query: Optional[Dict[str, str]] = None,
        body: Optional[bytes] = None,
    ) -> Tuple[int, Dict[str, object]]:
        """Dispatch one request; always returns ``(status, payload)``."""
        query = query or {}
        try:
            return self._route(method.upper(), path.rstrip("/") or "/",
                               query, body)
        except _ApiError as error:
            return error.status, error.payload
        except ReproError as error:
            return 400, error_payload("bad_request", str(error))
        except Exception as error:  # never leak a traceback as a 500 crash
            return 500, error_payload(
                "internal", f"{type(error).__name__}: {error}"
            )

    def _route(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: Optional[bytes],
    ) -> Tuple[int, Dict[str, object]]:
        parts = [part for part in path.split("/") if part]
        if not parts or parts[0] != "v1":
            raise _ApiError(
                404, "not_found",
                f"unknown path {path!r} (the API lives under /v1/)",
            )
        tail = parts[1:]
        if tail == ["health"]:
            return self._only(method, "GET", self._health)
        if tail == ["registry"]:
            return self._only(method, "GET", self._registry)
        if tail == ["store", "digest"]:
            return self._only(method, "GET", self._digest)
        if tail == ["runs"]:
            return self._only(method, "GET", lambda: self._runs(query))
        if len(tail) == 2 and tail[0] == "runs":
            return self._only(method, "GET", lambda: self._run(tail[1]))
        if tail in (["failures"], ["quarantine"]):
            return self._only(
                method, "GET", lambda: self._artifacts(tail[0])
            )
        if len(tail) == 2 and tail[0] in ("failures", "quarantine"):
            return self._only(
                method, "GET", lambda: self._artifact(tail[0], tail[1])
            )
        if tail == ["jobs"]:
            if method == "POST":
                return self._submit(body)
            return self._only(method, "GET", self._jobs, allowed="GET, POST")
        if len(tail) == 2 and tail[0] == "jobs":
            return self._only(method, "GET", lambda: self._job(tail[1]))
        raise _ApiError(404, "not_found", f"unknown path {path!r}")

    @staticmethod
    def _only(method, expected, handler, allowed=None):
        if method != expected:
            raise _ApiError(
                405, "method_not_allowed",
                f"method {method} not allowed here (allowed: "
                f"{allowed or expected})",
            )
        return handler()

    # -- read endpoints ------------------------------------------------------

    def _view(self):
        """A consistent read view: refresh, then pin the frontier."""
        self.store.refresh()
        return self.store.snapshot()

    def _health(self) -> Tuple[int, Dict[str, object]]:
        jobs = self.jobs.list()
        states: Dict[str, int] = {}
        for job in jobs:
            states[job.state] = states.get(job.state, 0) + 1
        return 200, {
            "status": "ok",
            "version": __version__,
            "store": str(self.store.root),
            "records": len(self._view()),
            "jobs": states,
        }

    def _registry(self) -> Tuple[int, Dict[str, object]]:
        from repro.registry import registry_dump

        return 200, registry_dump()

    def _digest(self) -> Tuple[int, Dict[str, object]]:
        view = self._view()
        return 200, {"digest": view.digest(), "records": len(view)}

    def _runs(self, query: Dict[str, str]) -> Tuple[int, Dict[str, object]]:
        filters = {}
        for name, (keyword, cast) in _RUN_FILTERS.items():
            if name not in query:
                continue
            raw = query[name]
            if cast is None:
                filters[keyword] = _parse_bool(raw, name)
            elif cast is int:
                filters[keyword] = _parse_int(raw, name)
            else:
                filters[keyword] = raw
        unknown = set(query) - set(_RUN_FILTERS) - {"limit", "offset"}
        if unknown:
            raise _ApiError(
                400, "bad_request",
                f"unknown query parameter(s): {', '.join(sorted(unknown))}",
            )
        limit = min(
            _parse_int(query.get("limit", str(_DEFAULT_PAGE)), "limit",
                       minimum=1),
            _MAX_PAGE,
        )
        offset = _parse_int(query.get("offset", "0"), "offset", minimum=0)
        view = self._view()
        total = view.count(**filters)
        records = list(view.query(limit=limit, offset=offset, **filters))
        return 200, {
            "total": total,
            "limit": limit,
            "offset": offset,
            "runs": [record.to_dict() for record in records],
        }

    def _resolve(self, view, prefix: str) -> str:
        matches = view.resolve_prefix(prefix)
        if not matches:
            raise _ApiError(
                404, "not_found", f"no archived run matches {prefix!r}"
            )
        if len(matches) > 1:
            raise _ApiError(
                400, "ambiguous_hash",
                f"hash prefix {prefix!r} matches {len(matches)} records",
                matches=matches[:16],
            )
        return matches[0]

    def _run(self, prefix: str) -> Tuple[int, Dict[str, object]]:
        view = self._view()
        return 200, view.get(self._resolve(view, prefix)).to_dict()

    def _archive(self, kind: str):
        return (
            self.store.failures if kind == "failures" else
            self.store.quarantine
        )

    def _artifacts(self, kind: str) -> Tuple[int, Dict[str, object]]:
        archive = self._archive(kind)
        hashes = archive.hashes()
        return 200, {"total": len(hashes), kind: hashes}

    def _artifact(self, kind: str, prefix: str) -> Tuple[int, Dict[str, object]]:
        archive = self._archive(kind)
        matches = archive.resolve(prefix)
        if not matches:
            raise _ApiError(
                404, "not_found",
                f"no archived {kind} artifact matches {prefix!r}",
            )
        if len(matches) > 1:
            raise _ApiError(
                400, "ambiguous_hash",
                f"hash prefix {prefix!r} matches {len(matches)} artifacts",
                matches=matches[:16],
            )
        return 200, archive.get(matches[0])

    # -- job endpoints -------------------------------------------------------

    def _parse_spec(self, kind: str, data: Dict[str, object]):
        if kind == "experiment":
            from repro.spec import ExperimentSpec

            return ExperimentSpec.from_dict(data)
        if kind == "sweep":
            from repro.experiments.sweep import SweepSpec

            return SweepSpec.from_dict(data)
        if kind == "fuzz":
            from repro.fuzz import FuzzSpec

            return FuzzSpec.from_dict(data)
        if kind == "campaign":
            from repro.campaign import CampaignSpec

            return CampaignSpec.from_dict(data)
        raise _ApiError(
            400, "bad_request",
            f"unknown job kind {kind!r} (expected experiment, sweep, "
            f"fuzz or campaign)",
        )

    def _submit(self, body: Optional[bytes]) -> Tuple[int, Dict[str, object]]:
        if not body:
            raise _ApiError(
                400, "bad_request", "POST /v1/jobs requires a JSON body"
            )
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise _ApiError(
                400, "bad_request", f"request body is not valid JSON: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise _ApiError(
                400, "bad_request",
                "request body must be a JSON object with 'kind' and 'spec'",
            )
        kind = payload.get("kind")
        spec_data = payload.get("spec")
        if not isinstance(kind, str) or not isinstance(spec_data, dict):
            raise _ApiError(
                400, "bad_request",
                "request body must carry a string 'kind' and an object "
                "'spec'",
            )
        options = payload.get("options", {})
        if not isinstance(options, dict):
            raise _ApiError(
                400, "bad_request", "'options' must be a JSON object"
            )
        try:
            spec = self._parse_spec(kind, spec_data)
        except _ApiError:
            raise
        except (ReproError, KeyError, TypeError, ValueError) as error:
            # Spec constructors raise ConfigurationError for semantic
            # problems, but a structurally malformed dict can surface
            # as KeyError/TypeError — either way it is the client's
            # payload that is wrong, not the server.
            raise _ApiError(
                400, "bad_request",
                f"invalid {kind} spec: {type(error).__name__}: {error}",
            ) from None
        job = self.jobs.submit(kind, spec, options)
        return 202, job.to_dict()

    def _jobs(self) -> Tuple[int, Dict[str, object]]:
        jobs = [job.to_dict() for job in self.jobs.list()]
        return 200, {"total": len(jobs), "jobs": jobs}

    def _job(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        job = self.jobs.get(job_id)
        if job is None:
            raise _ApiError(404, "not_found", f"no job {job_id!r}")
        return 200, job.to_dict()
