"""The experiment service: the run store behind a long-lived HTTP API.

Every consumer used to shell into the CLI and pay a full store open per
invocation; this package keeps one process resident against the archive
and serves everything over a versioned JSON API instead:

* :class:`~repro.serve.jobs.JobManager` — in-process execution of
  submitted ExperimentSpec/SweepSpec/FuzzSpec/CampaignSpec payloads on
  worker threads, with live progress counters,
* :class:`~repro.serve.api.ServeApi` — the socket-free route layer
  (``/v1/jobs``, ``/v1/runs``, ``/v1/failures``, ``/v1/registry``,
  ``/v1/store/digest``); unit-testable without binding a port,
* :class:`~repro.serve.server.ServeDaemon` — the stdlib
  ``ThreadingHTTPServer`` shell (``repro serve``),
* :class:`~repro.serve.client.ServeClient` — the stdlib ``urllib``
  client (``repro submit`` / ``repro jobs``).

Core contract, pinned by tests and the CI ``serve-smoke`` job: a sweep
submitted over HTTP produces a store digest byte-identical to the same
sweep run via ``repro psweep`` — the service is a transport, never a
semantic fork.
"""

from repro.serve.api import ServeApi
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, JobManager
from repro.serve.server import ServeDaemon, serve_forever

__all__ = [
    "Job",
    "JobManager",
    "ServeApi",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "serve_forever",
]
