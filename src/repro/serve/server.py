"""The HTTP shell around :class:`repro.serve.api.ServeApi`.

Stdlib only: a :class:`http.server.ThreadingHTTPServer` whose handler
parses the request line into ``(method, path, query, body)``, hands it
to the API layer, and writes the JSON answer back.  No framework, no
dependency — the whole experiment service runs anywhere the repo does.

Thread model: every HTTP request gets its own thread (reads are served
from store snapshots, so they never block on running jobs), while the
job manager's own worker threads drain the submission queue.  The
server owns one long-lived :class:`~repro.store.RunStore` read handle;
job workers open their own handles on the same root.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.serve.api import ServeApi
from repro.serve.jobs import JobManager
from repro.store import RunStore

__all__ = ["ServeDaemon", "serve_forever"]

_MAX_BODY = 16 * 1024 * 1024  # a spec payload should never be near this


class _Handler(BaseHTTPRequestHandler):
    """One request in, one JSON answer out — all logic lives in ServeApi."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        query = dict(parse_qsl(split.query, keep_blank_values=True))
        body: Optional[bytes] = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            if length > _MAX_BODY:
                self._reply(413, {
                    "error": {
                        "code": "too_large",
                        "message": f"request body over {_MAX_BODY} bytes",
                    }
                })
                return
            body = self.rfile.read(length)
        status, payload = self.server.api.handle(
            method, split.path, query, body
        )
        self._reply(status, payload)

    def _reply(self, status: int, payload: dict) -> None:
        encoded = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def log_message(self, format: str, *args) -> None:
        if self.server.quiet:
            return
        BaseHTTPRequestHandler.log_message(self, format, *args)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, api: ServeApi, *, quiet: bool) -> None:
        super().__init__(address, _Handler)
        self.api = api
        self.quiet = quiet


class ServeDaemon:
    """The assembled experiment service: store + job manager + HTTP.

    ``port=0`` binds an ephemeral port (tests use this); the actual
    address is available as :attr:`address` after construction.  Run
    blocking via :meth:`serve_forever` (the CLI foreground mode) or in
    a background thread via :meth:`start` / :meth:`stop` (tests).
    """

    def __init__(
        self,
        store_root: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        quiet: bool = False,
    ) -> None:
        self.store = RunStore(store_root)
        self.jobs = JobManager(store_root, workers=workers)
        self.api = ServeApi(self.store, self.jobs)
        self._server = _Server((host, port), self.api, quiet=quiet)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Block serving requests until KeyboardInterrupt/SIGTERM."""
        try:
            self._server.serve_forever()
        finally:
            self.close()

    def start(self) -> None:
        """Serve on a background thread (returns once accepting)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.close()

    def close(self) -> None:
        self._server.server_close()
        self.jobs.shutdown(timeout=1.0)


def serve_forever(
    store_root: str,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 2,
    quiet: bool = False,
    announce=print,
) -> int:
    """CLI foreground entry: bind, announce the address, serve until ^C."""
    daemon = ServeDaemon(
        store_root, host=host, port=port, workers=workers, quiet=quiet
    )
    host_, port_ = daemon.address
    announce(
        f"repro serve: store {daemon.store.root} "
        f"({len(daemon.store)} records) on http://{host_}:{port_}"
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        announce("repro serve: shutting down")
    return 0
