"""Setup shim for legacy editable installs (offline, no wheel package)."""

from setuptools import setup

setup()
