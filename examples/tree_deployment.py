#!/usr/bin/env python3
"""Uniform deployment beyond rings: trees and general graphs (paper §5).

The conclusion of the paper sketches the extension: embed a virtual
ring in the network (Euler tour of a tree, or of a spanning tree for a
general graph) and run the ring algorithms unchanged.  This demo
deploys monitoring agents over a random tree and a random graph and
reports both the virtual-ring guarantee and the tree-level spread.

Run:  python examples/tree_deployment.py
"""

from __future__ import annotations

import random

from repro.embedding.deploy import deploy_on_graph, deploy_on_tree
from repro.embedding.general import random_connected_graph
from repro.embedding.tree import random_tree


def main() -> None:
    rng = random.Random(2024)

    tree = random_tree(24, rng)
    agents = [1, 7, 13, 19]
    print(f"tree network: {tree.size} nodes; agents start at {agents}")
    outcome = deploy_on_tree(tree, agents, algorithm="known_k_full")
    print(f"  virtual ring size          : {outcome.ring.size} (= 2(n-1))")
    print(f"  uniform on virtual ring    : {outcome.ok}")
    print(f"  final tree nodes           : {sorted(outcome.tree_positions)}")
    print(f"  distinct tree nodes        : {outcome.distinct_tree_nodes}/{len(agents)}")
    print(f"  min pairwise tree distance : {outcome.min_tree_distance}")
    print(f"  total (virtual) moves      : {outcome.virtual.total_moves}")
    print()

    graph = random_connected_graph(24, 14, rng)
    print(f"general graph: {graph.size} nodes, {len(graph.edges)} edges")
    outcome = deploy_on_graph(graph, agents, algorithm="known_k_logspace")
    print(f"  spanning-tree virtual ring : {outcome.ring.size} nodes")
    print(f"  uniform on virtual ring    : {outcome.ok}")
    print(f"  final graph nodes          : {sorted(outcome.tree_positions)}")
    print(f"  min pairwise tree distance : {outcome.min_tree_distance}")
    print()
    print(
        "The virtual ring has 2(n-1) nodes, so total moves stay within a "
        "factor ~2 of the ring bounds - the asymptotic equivalence the "
        "paper notes in Section 5."
    )


if __name__ == "__main__":
    main()
