#!/usr/bin/env python3
"""Network-management patrol: the paper's motivating scenario (§1.1).

A ring of routers must each be visited regularly by a maintenance
agent (software updates, health checks).  If the k agents start
clustered near the operations centre, the far side of the ring waits
up to n hops between visits.  Uniform deployment fixes the cadence:
after deployment every node is within ceil(n/k) hops of an agent, so a
subsequent round-robin patrol visits each node at k-times shorter
intervals.

Run:  python examples/network_patrol.py
"""

from __future__ import annotations

from repro import run_experiment
from repro.analysis.render import render_positions
from repro.ring.placement import quarter_packed_placement


def worst_wait(ring_size: int, agent_nodes) -> int:
    """Max forward distance from any node to the nearest agent behind it.

    In a unidirectional ring the next visit to node v comes from the
    closest agent upstream; the worst-served node sits just after an
    agent, a full gap away from the next one.
    """
    ordered = sorted(agent_nodes)
    gaps = [
        (ordered[(i + 1) % len(ordered)] - ordered[i]) % ring_size or ring_size
        for i in range(len(ordered))
    ]
    return max(gaps)


def main() -> None:
    n, k = 48, 8
    placement = quarter_packed_placement(n, k)
    print(f"router ring: n = {n} nodes, k = {k} maintenance agents")
    print("agents start clustered at the operations centre (Figure 3 layout):")
    print("  ", render_positions(n, placement.homes))
    print(f"  worst inter-visit gap before deployment: {worst_wait(n, placement.homes)} hops")
    print()

    result = run_experiment("known_k_logspace", placement)
    assert result.ok, result.report.describe()
    print("after running Algorithms 2+3 (O(log n) memory per agent):")
    print("  ", render_positions(n, result.final_positions))
    print(f"  worst inter-visit gap after deployment : {worst_wait(n, result.final_positions)} hops")
    print(
        f"  deployment cost: {result.total_moves} total moves, "
        f"{result.ideal_time} time units"
    )
    print()
    print(
        f"patrol cadence improvement: {worst_wait(n, placement.homes)} -> "
        f"{worst_wait(n, result.final_positions)} hops "
        f"({worst_wait(n, placement.homes) // worst_wait(n, result.final_positions)}x)"
    )


if __name__ == "__main__":
    main()
