#!/usr/bin/env python3
"""Theorem 5 walkthrough: why knowledge (of k or n) is necessary.

Without knowing k or n, no algorithm can solve uniform deployment
*with termination detection*.  The proof is a deception argument, and
this script executes it:

1. pick a ring R where the algorithm works (n=24, k=4, gap d=6),
2. build the expanded ring R' (2qn+2n nodes) whose occupied prefix
   repeats R's layout q+1 times,
3. replay both rings in lockstep: Lemma 1 says the window nodes are
   locally indistinguishable — measured agreement is exactly 1.0,
4. let the deceived agents run to completion on R': they halt at
   spacing d where R' demands 2d.  Uniformity fails, as proven.

Run:  python examples/impossibility_walkthrough.py
"""

from __future__ import annotations

from repro.analysis.render import render_positions
from repro.experiments.figures import figure
from repro.experiments.impossibility import (
    demonstrate_impossibility,
    lemma1_window_agreement,
)


def main() -> None:
    base = figure("theorem_5_base").placement
    print("step 1 - the base ring R:", base.describe())
    print("  ", render_positions(base.ring_size, base.homes))
    print()

    outcome = demonstrate_impossibility(base)
    print(
        f"step 2 - the expanded ring R': {outcome.expanded.ring_size} nodes, "
        f"{outcome.expanded.agent_count} agents (q = {outcome.q}, "
        f"T(E_R) = {outcome.rounds_in_base} rounds)"
    )
    print(
        f"  required uniform gap on R': 2d = {outcome.expanded_gap} "
        f"(R's gap was d = {outcome.base_gap})"
    )
    print()

    agreement = lemma1_window_agreement(base, rounds=32)
    print("step 3 - Lemma 1 lockstep replay (local-configuration agreement")
    print("  of window nodes, per round):")
    print(f"  {['%.1f' % value for value in agreement[:16]]} ...")
    print(f"  min agreement over {len(agreement)} rounds: {min(agreement):.3f}")
    print()

    print("step 4 - the deceived agents run to completion on R':")
    print(
        "  halted positions:",
        outcome.final_positions,
    )
    print(
        f"  gaps inside the repeated window: {outcome.observed_prefix_gaps} "
        "(= d, never 2d)"
    )
    print(f"  uniform on R'? {outcome.report.ok}")
    print()
    print(
        "Conclusion: the agents cannot distinguish R' from R in time, so "
        "they terminate too early — exactly Theorem 5. The relaxed "
        "algorithm (Algorithms 4-6) escapes this by never *detecting* "
        "termination: suspended agents remain correctable."
    )


if __name__ == "__main__":
    main()
