#!/usr/bin/env python3
"""Database-replica placement: the paper's load-balancing motivation (§1.1).

Agents carry large database replicas.  Not every node can store the
database, but every node should reach a replica quickly.  Uniform
deployment of the replica-carrying agents minimises the worst-case
access distance: it drops from O(n) (all replicas in one data centre)
to ceil(n/k).

The demo also shows Result 4's adaptivity: when the operator has
already spread the replicas partially (a symmetric configuration), the
no-knowledge algorithm finishes proportionally faster.

Run:  python examples/replica_placement.py
"""

from __future__ import annotations

from repro import run_experiment
from repro.analysis.render import render_positions
from repro.experiments.table1 import symmetry_placement
from repro.ring.placement import Placement


def max_access_distance(ring_size: int, replica_nodes) -> int:
    """Worst distance from any node to the nearest replica downstream."""
    ordered = sorted(replica_nodes)
    gaps = [
        (ordered[(i + 1) % len(ordered)] - ordered[i]) % ring_size or ring_size
        for i in range(len(ordered))
    ]
    return max(gaps) - 1  # the node right after a replica waits gap-1 hops


def main() -> None:
    n, k = 60, 6
    clustered = Placement(ring_size=n, homes=tuple(range(k)))
    print(f"storage ring: n = {n}, k = {k} replica-carrying agents")
    print("initially all replicas sit in one data centre:")
    print("  ", render_positions(n, clustered.homes))
    print(f"  worst access distance: {max_access_distance(n, clustered.homes)} hops")
    print()

    result = run_experiment("unknown", clustered)
    assert result.ok
    print("after relaxed uniform deployment (no knowledge of k or n):")
    print("  ", render_positions(n, result.final_positions))
    print(f"  worst access distance: {max_access_distance(n, result.final_positions)} hops")
    print(f"  cost: {result.total_moves} moves, {result.ideal_time} time units")
    print()

    print("Result 4 adaptivity - partially pre-spread replicas finish faster:")
    print(f"  {'l':>2}  {'moves':>7}  {'time':>6}")
    for degree in (1, 2, 3, 6):
        placement = symmetry_placement(n, k, degree, seed=1)
        adaptive = run_experiment("unknown", placement)
        assert adaptive.ok
        print(
            f"  {placement.symmetry_degree:>2}  {adaptive.total_moves:>7}  "
            f"{adaptive.ideal_time:>6}"
        )
    print("  (moves and time shrink ~1/l: closer to uniform = cheaper, Theorem 6)")


if __name__ == "__main__":
    main()
