#!/usr/bin/env python3
"""Watch an algorithm run: ASCII space-time diagrams of all three.

Rows are synchronous rounds, columns are ring nodes.  Digits are
staying agents (lower-case/`+` are in-transit queues), `-` is a token
left on an empty home, `.` is an empty node.  You can literally see
Algorithm 1's single circuit + walk, the log-space algorithm's
sub-phases with followers parking early, and the relaxed algorithm's
long estimating/patrolling spiral.

Run:  python examples/space_time_diagram.py
"""

from __future__ import annotations

from repro.analysis.timeline import record_timeline
from repro.experiments.runner import build_engine
from repro.ring.placement import placement_from_distances


def main() -> None:
    placement = placement_from_distances((1, 2, 4, 5))  # n = 12, k = 4
    print("configuration:", placement.describe())
    print("legend: digit = staying agent, lower/+ = in transit, "
          "- = token, . = empty")
    print()
    for algorithm, sample_every in (
        ("known_k_full", 2),
        ("known_k_logspace", 6),
        ("unknown", 16),
    ):
        engine = build_engine(algorithm, placement)
        timeline = record_timeline(engine, sample_every=sample_every)
        print(f"--- {algorithm} (one row per {sample_every} rounds) ---")
        print(timeline.render(limit=24))
        print()


if __name__ == "__main__":
    main()
