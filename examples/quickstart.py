#!/usr/bin/env python3
"""Quickstart: uniform deployment on an asynchronous ring in ~20 lines.

Builds the paper's Figure 4-style configuration (n = 24, k = 6 with a
2-fold symmetric layout), runs all three algorithms and prints what
happened.  Run:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import run_experiment
from repro.analysis.render import render_gaps, render_positions
from repro.ring.placement import periodic_placement


def main() -> None:
    # Figure 4 shows a 2-symmetric ring: two base nodes, 3 agents per
    # segment.  Block (1, 4, 7) repeated twice -> n = 24, k = 6, l = 2.
    placement = periodic_placement((1, 4, 7), 2)
    print("initial configuration:", placement.describe())
    print("  ", render_positions(placement.ring_size, placement.homes))
    print()

    for algorithm in ("known_k_full", "known_k_logspace", "unknown"):
        result = run_experiment(algorithm, placement)
        print(f"{algorithm}:")
        print(f"  uniform deployment: {result.ok}")
        print(f"  final positions   : {result.final_positions}")
        print(
            "   ",
            render_positions(placement.ring_size, result.final_positions),
        )
        print(f"  {render_gaps(placement.ring_size, result.final_positions)}")
        print(
            f"  total moves = {result.total_moves}, "
            f"ideal time = {result.ideal_time}, "
            f"max agent memory = {result.max_memory_bits} bits"
        )
        print()


if __name__ == "__main__":
    main()
