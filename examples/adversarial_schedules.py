#!/usr/bin/env python3
"""Asynchrony in action: one configuration, four adversarial schedules.

The model quantifies over *all* fair schedules.  This demo runs the
same initial configuration under a synchronous round-robin, a seeded
random adversary, a laggard adversary (starves two chosen agents as
long as fairness allows) and a burst adversary (runs one agent in long
exclusive bursts) — and shows that every algorithm reaches the same
uniform configuration regardless, with Algorithm 1 even making exactly
the same moves (it is deterministic per agent).

Run:  python examples/adversarial_schedules.py
"""

from __future__ import annotations

import random

from repro import run_experiment
from repro.ring.placement import random_placement
from repro.sim.scheduler import (
    BurstScheduler,
    LaggardScheduler,
    RandomScheduler,
    SynchronousScheduler,
)


def main() -> None:
    placement = random_placement(36, 6, random.Random(99))
    print("configuration:", placement.describe())
    print()
    for algorithm in ("known_k_full", "known_k_logspace", "unknown"):
        print(f"{algorithm}:")
        baseline = None
        for scheduler in (
            SynchronousScheduler(),
            RandomScheduler(seed=7),
            LaggardScheduler([0, 3], patience=100, seed=7),
            BurstScheduler(burst=50, seed=7),
        ):
            result = run_experiment(algorithm, placement, scheduler=scheduler)
            marker = "ok" if result.ok else "FAILED"
            same = (
                "(same final set)"
                if baseline is None or result.final_positions == baseline
                else "(different final set)"
            )
            if baseline is None:
                baseline = result.final_positions
                same = ""
            print(
                f"  {scheduler.describe():<48} {marker:>3}  "
                f"moves={result.total_moves:<6} {same}"
            )
        print()
    print(
        "Fairness is the only assumption the algorithms need: the FIFO "
        "links prevent overtaking, which is exactly what the paper's "
        "correctness arguments use."
    )


if __name__ == "__main__":
    main()
