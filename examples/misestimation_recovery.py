#!/usr/bin/env python3
"""Figure 9 walk-through: misestimation and recovery without knowledge.

The n = 27, k = 9 ring of Figure 9 contains the distance pattern
(1,3,1,3,1,3,1,3): an agent whose first eight measured gaps form that
4-fold repetition estimates n' = 4 and suspends at a wrong target.
An agent that measured the full aperiodic sequence knows n = 27,
meets the sleeper during its patrol, and sends its estimate; the
sleeper wakes, re-bases, and finishes correctly.

This script replays the run and narrates the estimate lifecycle per
agent (first estimate -> corrections -> final estimate).

Run:  python examples/misestimation_recovery.py
"""

from __future__ import annotations

from repro.analysis.render import render_positions
from repro.analysis.verification import verify_uniform_deployment
from repro.experiments.runner import build_engine
from repro.ring.placement import placement_from_distances
from repro.sim.trace import TraceEventKind, TraceRecorder


def main() -> None:
    placement = placement_from_distances((11, 1, 3, 1, 3, 1, 3, 1, 3))
    print("Figure 9 ring:", placement.describe())
    print("  ", render_positions(placement.ring_size, placement.homes))
    print()

    trace = TraceRecorder(
        keep=lambda e: e.kind in (TraceEventKind.BROADCAST, TraceEventKind.WAKE)
    )
    engine = build_engine("unknown", placement, trace=trace)

    # Record each agent's estimate whenever it changes.
    histories = {agent_id: [] for agent_id in engine.agent_ids}
    while not engine.quiescent:
        engine.run_rounds(1)
        for agent_id in engine.agent_ids:
            estimate = engine.agent(agent_id).n_est
            if estimate is not None and (
                not histories[agent_id] or histories[agent_id][-1] != estimate
            ):
                histories[agent_id].append(estimate)

    print("estimate lifecycle per agent (n' values in order of adoption):")
    for agent_id, history in histories.items():
        arrow = " -> ".join(str(value) for value in history)
        note = "  <- misestimated, then corrected" if len(history) > 1 else ""
        print(f"  agent {agent_id}: {arrow}{note}")
    print()

    corrections = trace.of_kind(TraceEventKind.BROADCAST)
    wakes = trace.of_kind(TraceEventKind.WAKE)
    print(f"patrol messages sent: {len(corrections)}; sleepers woken: {len(wakes)}")
    print()

    report = verify_uniform_deployment(engine, require_suspended=True)
    positions = sorted(engine.final_positions().values())
    print("final configuration:", report.describe())
    print("  ", render_positions(placement.ring_size, positions))


if __name__ == "__main__":
    main()
