"""Unit tests for schedulers, the metrics accumulator, and traces."""

from __future__ import annotations


from repro.sim.metrics import Metrics
from repro.sim.scheduler import (
    BurstScheduler,
    LaggardScheduler,
    RandomScheduler,
    SynchronousScheduler,
)
from repro.sim.trace import TraceEvent, TraceEventKind, TraceRecorder, format_trace


class TestSchedulers:
    def test_synchronous_returns_everyone(self):
        scheduler = SynchronousScheduler()
        assert scheduler.next_batch([1, 2, 3]) == [1, 2, 3]
        assert scheduler.counts_time

    def test_random_is_deterministic_by_seed(self):
        first = [RandomScheduler(seed=9).next_batch([1, 2, 3, 4]) for _ in range(5)]
        second = [RandomScheduler(seed=9).next_batch([1, 2, 3, 4]) for _ in range(5)]
        # Each scheduler instance restarts its stream: compare streams.
        one = RandomScheduler(seed=9)
        two = RandomScheduler(seed=9)
        assert [one.next_batch([1, 2, 3]) for _ in range(10)] == [
            two.next_batch([1, 2, 3]) for _ in range(10)
        ]
        assert all(len(batch) == 1 for batch in first + second)

    def test_random_picks_only_enabled(self):
        scheduler = RandomScheduler(seed=0)
        for _ in range(20):
            (choice,) = scheduler.next_batch([4, 7])
            assert choice in (4, 7)

    def test_laggard_starves_until_budget(self):
        scheduler = LaggardScheduler([0], patience=3, seed=1)
        picks = [scheduler.next_batch([0, 1])[0] for _ in range(4)]
        assert picks[:3] == [1, 1, 1]
        assert picks[3] == 0  # budget exhausted: the laggard finally runs

    def test_laggard_runs_laggard_when_alone(self):
        scheduler = LaggardScheduler([0], patience=5, seed=1)
        assert scheduler.next_batch([0]) == [0]

    def test_laggard_runs_laggard_mid_budget_when_alone(self):
        # Fairness: only laggards enabled -> a laggard runs even while
        # the starvation budget is unspent, and the budget resets.
        scheduler = LaggardScheduler([0], patience=5, seed=1)
        assert scheduler.next_batch([1, 2])[0] in (1, 2)  # budget 5 -> 4
        assert scheduler.next_batch([0]) == [0]  # laggard alone: runs now
        picks = [scheduler.next_batch([0, 1])[0] for _ in range(5)]
        assert picks == [1] * 5  # full patience window restored

    def test_laggard_turn_stays_owed_when_none_enabled(self):
        # Exhausting the budget while no laggard is enabled must NOT
        # silently refill it: the owed turn is honoured the moment a
        # laggard shows up, bounding its starvation at `patience` steps.
        scheduler = LaggardScheduler([0], patience=2, seed=1)
        assert scheduler.next_batch([1, 2])[0] in (1, 2)  # budget 2 -> 1
        assert scheduler.next_batch([1, 2])[0] in (1, 2)  # budget 1 -> 0
        # Budget exhausted, laggard 0 not enabled: eager agents still run
        # (progress), but the budget is not reset behind the scenes.
        assert scheduler.next_batch([1, 2])[0] in (1, 2)
        assert scheduler.next_batch([1, 2])[0] in (1, 2)
        # The laggard becomes enabled: it must run immediately, not sit
        # out another freshly-reset starvation window.
        assert scheduler.next_batch([0, 1, 2]) == [0]
        # Running the laggard is what resets the budget.
        picks = [scheduler.next_batch([0, 1])[0] for _ in range(2)]
        assert picks == [1, 1]
        assert scheduler.next_batch([0, 1]) == [0]

    def test_burst_sticks_with_current_agent(self):
        scheduler = BurstScheduler(burst=4, seed=2)
        picks = [scheduler.next_batch([0, 1, 2])[0] for _ in range(4)]
        assert len(set(picks)) == 1

    def test_burst_rotates_when_agent_disabled(self):
        scheduler = BurstScheduler(burst=10, seed=2)
        (first,) = scheduler.next_batch([0, 1])
        others = [agent for agent in (0, 1) if agent != first]
        (second,) = scheduler.next_batch(others)
        assert second in others

    def test_describe(self):
        assert "seed=5" in RandomScheduler(seed=5).describe()
        assert "patience=7" in LaggardScheduler([1], patience=7).describe()
        assert "burst=3" in BurstScheduler(burst=3).describe()
        assert SynchronousScheduler().describe() == "SynchronousScheduler"


class TestMetrics:
    def test_counters(self):
        metrics = Metrics()
        metrics.record_activation(0)
        metrics.record_activation(0)
        metrics.record_activation(1)
        metrics.record_move(0)
        metrics.record_move(1)
        metrics.record_move(1)
        metrics.record_memory(0, 10)
        metrics.record_memory(0, 7)  # lower: high-water keeps 10
        metrics.record_memory(1, 12)
        metrics.record_broadcast(3)
        metrics.record_delivery(2)
        metrics.record_token()
        metrics.record_round()
        metrics.record_round()
        assert metrics.total_moves == 3
        assert metrics.max_moves == 2
        assert metrics.max_memory_bits == 12
        assert metrics.total_activations == 3
        assert metrics.messages_sent == 3
        assert metrics.messages_delivered == 2
        assert metrics.tokens_released == 1
        assert metrics.rounds == 2

    def test_empty_metrics(self):
        metrics = Metrics()
        assert metrics.total_moves == 0
        assert metrics.max_moves == 0
        assert metrics.max_memory_bits == 0
        assert metrics.rounds is None

    def test_summary_keys(self):
        summary = Metrics().summary()
        assert set(summary) == {
            "total_moves",
            "max_moves",
            "ideal_time",
            "max_memory_bits",
            "messages_sent",
            "tokens_released",
            "activations",
        }


class TestTrace:
    def _event(self, step, kind=TraceEventKind.MOVE, agent=0, node=0, detail=None):
        return TraceEvent(step=step, kind=kind, agent_id=agent, node=node, detail=detail)

    def test_recorder_keeps_everything_by_default(self):
        recorder = TraceRecorder()
        recorder.record(self._event(1))
        recorder.record(self._event(2, kind=TraceEventKind.HALT))
        assert len(recorder.events) == 2

    def test_recorder_filter(self):
        recorder = TraceRecorder(keep=lambda e: e.kind is TraceEventKind.HALT)
        recorder.record(self._event(1))
        recorder.record(self._event(2, kind=TraceEventKind.HALT))
        assert [e.step for e in recorder.events] == [2]

    def test_of_kind_and_for_agent(self):
        recorder = TraceRecorder()
        recorder.record(self._event(1, agent=3))
        recorder.record(self._event(2, kind=TraceEventKind.TOKEN, agent=4))
        assert len(recorder.of_kind(TraceEventKind.TOKEN)) == 1
        assert len(recorder.for_agent(3)) == 1

    def test_format_trace_limit(self):
        events = [self._event(i) for i in range(10)]
        text = format_trace(events, limit=3)
        assert "7 more events" in text
        assert text.count("\n") == 3

    def test_format_trace_detail(self):
        text = format_trace([self._event(1, detail={"a": 1})])
        assert "{'a': 1}" in text
