"""Tests for the head-to-head comparison driver and its CLI command."""

from __future__ import annotations


from repro.cli import main
from repro.experiments.comparison import compare_algorithms
from repro.ring.placement import placement_from_distances


class TestComparison:
    def test_runs_all_registered_algorithms(self):
        comparison = compare_algorithms(placement_from_distances((5, 7, 4, 8)))
        assert set(comparison.results) == {
            "known_k_full",
            "known_n_full",
            "known_k_logspace",
            "unknown",
        }
        assert comparison.all_uniform

    def test_subset_of_algorithms(self):
        comparison = compare_algorithms(
            placement_from_distances((5, 7, 4, 8)),
            algorithms=["known_k_full", "unknown"],
        )
        assert set(comparison.results) == {"known_k_full", "unknown"}

    def test_rows_and_winner(self):
        # Use a larger k: the log-space memory advantage over the
        # stored distance sequence only materialises beyond tiny k.
        distances = (1, 2, 3, 4, 5, 6, 7, 8, 9, 2, 4, 9)  # n = 60, k = 12
        comparison = compare_algorithms(placement_from_distances(distances))
        rows = comparison.rows()
        assert len(rows) == 4
        # The Table 1 trade-offs must show up: the relaxed algorithm
        # moves the most; a knowledge-of-k full-memory variant is the
        # fastest; the log-space algorithm uses the least memory.
        assert comparison.winner("moves") in ("known_k_full", "known_n_full")
        assert comparison.winner("memory_bits") == "known_k_logspace"
        unknown_row = next(r for r in rows if r["algorithm"] == "unknown")
        assert unknown_row["moves"] == max(r["moves"] for r in rows)

    def test_optimal_anchor(self):
        comparison = compare_algorithms(placement_from_distances((5, 7, 4, 8)))
        assert comparison.optimal_moves > 0
        for row in comparison.rows():
            assert row["moves"] >= comparison.optimal_moves


class TestCompareCommand:
    def test_compare_cli(self, capsys):
        code = main(
            ["compare", "--distances", "1,2,3,4,5,6,7,8,9,2,4,9"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "omniscient optimum" in output
        assert "least memory : known_k_logspace" in output

    def test_compare_random(self, capsys):
        code = main(["compare", "--n", "30", "--k", "5", "--seed", "4"])
        assert code == 0
        assert "fewest moves" in capsys.readouterr().out
