"""Mid-run snapshot consistency: the 5-tuple partitions the agents.

At every point of every execution, each agent is in exactly one place:
one node's staying set or one link queue.  Token counts never decrease
between snapshots, and the snapshot helpers agree with the live ring.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.runner import build_engine
from repro.ring.placement import random_placement
from repro.sim.scheduler import RandomScheduler


def _all_agent_occurrences(snapshot):
    placed = []
    for node, agents in snapshot.staying.items():
        placed.extend(agents)
    for node, agents in snapshot.queues.items():
        placed.extend(agents)
    return placed


@pytest.mark.parametrize("algorithm", ["known_k_full", "known_k_logspace", "unknown"])
def test_partition_holds_at_every_round(algorithm):
    placement = random_placement(18, 4, random.Random(5))
    engine = build_engine(algorithm, placement)
    previous_tokens = engine.snapshot().tokens
    for _ in engine.iter_rounds():
        snapshot = engine.snapshot()
        occurrences = _all_agent_occurrences(snapshot)
        assert sorted(occurrences) == list(engine.agent_ids)
        assert all(
            now >= before for now, before in zip(snapshot.tokens, previous_tokens)
        )
        previous_tokens = snapshot.tokens


@given(seed=st.integers(0, 5_000))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_partition_under_random_schedules(seed):
    rng = random.Random(seed)
    placement = random_placement(rng.randint(6, 20), rng.randint(2, 5), rng)
    algorithm = rng.choice(["known_k_full", "known_k_logspace", "unknown"])
    engine = build_engine(algorithm, placement, scheduler=RandomScheduler(seed))
    checked = 0
    while not engine.quiescent and checked < 200:
        engine.run_rounds(3)
        snapshot = engine.snapshot()
        assert sorted(_all_agent_occurrences(snapshot)) == list(engine.agent_ids)
        checked += 1
    engine.run()
    final = engine.snapshot()
    assert final.all_queues_empty()
    assert sorted(_all_agent_occurrences(final)) == list(engine.agent_ids)


def test_snapshot_tokens_match_ring():
    placement = random_placement(14, 3, random.Random(9))
    engine = build_engine("known_k_full", placement)
    engine.run_rounds(5)
    assert engine.snapshot().tokens == engine.ring.token_counts
