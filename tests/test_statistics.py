"""Tests for multi-trial aggregation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.statistics import MetricSummary, aggregate_trials
from repro.sim.scheduler import RandomScheduler


class TestMetricSummary:
    def test_single_value(self):
        summary = MetricSummary.of([4.0])
        assert summary.mean == 4.0
        assert summary.stdev == 0.0
        assert summary.minimum == summary.maximum == 4.0

    def test_spread(self):
        summary = MetricSummary.of([2.0, 4.0, 6.0])
        assert summary.mean == 4.0
        assert summary.minimum == 2.0 and summary.maximum == 6.0
        assert summary.stdev == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricSummary.of([])

    def test_describe(self):
        text = MetricSummary.of([1.0, 3.0]).describe(1)
        assert "[1.0..3.0]" in text


class TestAggregateTrials:
    def test_synchronous_default(self):
        aggregate = aggregate_trials("known_k_full", 24, 4, trials=3, seed=1)
        assert aggregate.all_uniform
        assert aggregate.trials == 3
        assert aggregate.ideal_time is not None
        assert aggregate.total_moves.minimum > 0
        assert len(aggregate.results) == 3

    def test_async_scheduler_factory(self):
        aggregate = aggregate_trials(
            "known_k_logspace",
            20,
            4,
            trials=2,
            scheduler_factory=lambda index: RandomScheduler(index),
        )
        assert aggregate.all_uniform
        assert aggregate.ideal_time is None  # async runs do not report time

    def test_row_shape(self):
        aggregate = aggregate_trials("unknown", 18, 3, trials=2)
        row = aggregate.row()
        assert row["n"] == 18 and row["k"] == 3 and row["uniform"] is True
        assert "moves" in row and "memory_bits" in row

    def test_trials_validation(self):
        with pytest.raises(ConfigurationError):
            aggregate_trials("known_k_full", 12, 3, trials=0)

    def test_seeded_reproducibility(self):
        first = aggregate_trials("known_k_full", 24, 4, trials=3, seed=7)
        second = aggregate_trials("known_k_full", 24, 4, trials=3, seed=7)
        assert first.total_moves == second.total_moves
