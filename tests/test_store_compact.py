"""Store-index correctness sweep: tri-state uniform, count pushdown, compact.

Three related store fixes ride the link-fault PR:

* a record whose result carries ``report: None`` (the engine ran but
  verification was skipped or inapplicable) used to index as
  ``uniform=0`` and surface under ``query --failed`` — the index now
  stores NULL and both filter polarities exclude it,
* ``count()`` is pushed into the index backend (``SELECT COUNT(*)``
  for SQLite): no entry list is materialised and no record bytes are
  ever parsed,
* ``RunStore.compact()`` rewrites shards down to their winning lines —
  digest unchanged by construction, superseded/duplicate bytes
  reclaimed, stale pre-compaction snapshots fail loudly.

Every behaviour is pinned on the SQLite index AND the in-memory scan,
which must stay differentially identical.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiment
from repro.spec import ExperimentSpec, PlacementSpec
from repro.store import RunRecord, RunStore
from repro.store.index import INDEX_SCHEMA_VERSION

BACKENDS = ("sqlite", "memory")


def _spec(algorithm="known_k_full", seed=1, scheduler="sync", n=18, k=3):
    return ExperimentSpec(
        algorithm=algorithm,
        placement=PlacementSpec(
            kind="random", ring_size=n, agent_count=k, seed=seed
        ),
        scheduler=scheduler,
        scheduler_seed=seed ^ 0xBEEF,
    )


def _record(**kwargs) -> RunRecord:
    spec = _spec(**kwargs)
    return run_experiment(spec).to_record(spec)


def _reportless(seed: int) -> RunRecord:
    """A committed run whose result carries no verification report."""
    data = _record(seed=seed).to_dict()
    data["result"]["report"] = None
    return RunRecord.from_dict(data)


# ---------------------------------------------------------------------------
# Satellite: tri-state uniform in the index
# ---------------------------------------------------------------------------


class TestTriStateUniform:
    def test_schema_version_bumped_for_nullable_uniform(self):
        assert INDEX_SCHEMA_VERSION == 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reportless_record_matches_neither_polarity(self, tmp_path, backend):
        store = RunStore(tmp_path / backend, index=backend)
        good = _record(seed=1)
        orphan = _reportless(seed=2)
        store.put(good)
        store.put(orphan)
        assert len(store) == 2
        # The bug this pins: a reportless record is NOT a failed run.
        failed = list(store.query(uniform=False))
        assert failed == []
        assert store.count(uniform=False) == 0
        succeeded = list(store.query(uniform=True))
        assert [r.content_hash for r in succeeded] == [good.content_hash]
        assert store.count(uniform=True) == 1
        # Unfiltered access still sees it — it is archived, just unjudged.
        assert store.contains(orphan.content_hash)
        assert store.get(orphan.content_hash).result["report"] is None
        store.close()

    def test_backends_differentially_identical(self, tmp_path):
        root = tmp_path / "store"
        writer = RunStore(root, index="sqlite")
        for seed in range(1, 5):
            writer.put(_record(seed=seed))
        writer.put(_reportless(seed=5))
        writer.close()
        sqlite_store = RunStore(root, index="sqlite")
        memory_store = RunStore(root, index="memory")
        for uniform in (None, True, False):
            assert sqlite_store.count(uniform=uniform) == memory_store.count(
                uniform=uniform
            )
            assert [r.content_hash for r in sqlite_store.query(uniform=uniform)] == [
                r.content_hash for r in memory_store.query(uniform=uniform)
            ]
        assert sqlite_store.digest() == memory_store.digest()
        sqlite_store.close()
        memory_store.close()

    def test_reopen_preserves_null(self, tmp_path):
        root = tmp_path / "store"
        store = RunStore(root)
        store.put(_reportless(seed=3))
        store.close()
        reopened = RunStore(root)
        assert reopened.count(uniform=False) == 0
        assert reopened.count(uniform=True) == 0
        assert reopened.count() == 1
        assert reopened.verify_index() == 1
        reopened.close()


# ---------------------------------------------------------------------------
# Satellite: count() pushed into the index backend
# ---------------------------------------------------------------------------


class TestCountPushdown:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_count_matches_query(self, tmp_path, backend):
        store = RunStore(tmp_path / backend, index=backend)
        for seed in range(1, 4):
            store.put(_record(seed=seed))
        for seed in range(1, 3):
            store.put(_record(seed=seed + 10, algorithm="known_n_full"))
        filters = [
            {},
            {"algorithm": "known_k_full"},
            {"algorithm": "known_n_full"},
            {"algorithm": "nope"},
            {"ring_size": 18, "agent_count": 3},
            {"uniform": True},
            {"uniform": False},
            {"hash_prefix": next(iter(store.hashes()))[:8]},
        ]
        for kwargs in filters:
            assert store.count(**kwargs) == len(list(store.query(**kwargs)))
        store.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_count_reads_no_record_bytes(self, tmp_path, backend, monkeypatch):
        store = RunStore(tmp_path / backend, index=backend)
        for seed in range(1, 4):
            store.put(_record(seed=seed))

        def explode(*args, **kwargs):
            raise AssertionError("count() must not parse record bytes")

        monkeypatch.setattr(type(store), "_load", explode)
        monkeypatch.setattr(type(store), "_load_many", explode)
        assert store.count() == 3
        assert store.count(algorithm="known_k_full", uniform=True) == 3
        assert store.count(algorithm="known_n_full") == 0
        store.close()


# ---------------------------------------------------------------------------
# Satellite: shard compaction
# ---------------------------------------------------------------------------


class TestCompact:
    def _churned_store(self, root, index="sqlite"):
        """A store with superseded lines: same specs put() twice."""
        store = RunStore(root, index=index)
        records = [_record(seed=seed) for seed in range(1, 4)]
        for record in records:
            store.put(record)
        for record in records:
            store.put(record, replace=True)
        return store

    def test_digest_and_contents_unchanged(self, tmp_path):
        store = self._churned_store(tmp_path / "store")
        before_digest = store.digest()
        before_hashes = store.hashes()
        shard_bytes = sum(
            p.stat().st_size for p in store.root.glob("shard-*.jsonl")
        )
        reclaimed = store.compact()
        assert reclaimed > 0
        after_bytes = sum(
            p.stat().st_size for p in store.root.glob("shard-*.jsonl")
        )
        assert after_bytes == shard_bytes - reclaimed
        assert store.digest() == before_digest
        assert store.hashes() == before_hashes
        for content_hash in before_hashes:
            assert store.get(content_hash).content_hash == content_hash
        assert store.verify_index() == len(before_hashes)
        store.close()

    def test_second_compact_is_a_noop(self, tmp_path):
        store = self._churned_store(tmp_path / "store")
        store.compact()
        assert store.compact() == 0
        store.close()

    def test_reopen_after_compact(self, tmp_path):
        root = tmp_path / "store"
        store = self._churned_store(root)
        digest = store.digest()
        store.compact()
        store.close()
        reopened = RunStore(root)
        assert reopened.digest() == digest
        assert len(reopened) == 3
        reopened.close()

    def test_memory_index_agrees(self, tmp_path):
        sqlite_store = self._churned_store(tmp_path / "a", index="sqlite")
        memory_store = self._churned_store(tmp_path / "b", index="memory")
        assert sqlite_store.digest() == memory_store.digest()
        assert sqlite_store.compact() == memory_store.compact()
        assert sqlite_store.digest() == memory_store.digest()
        assert sqlite_store.hashes() == memory_store.hashes()
        sqlite_store.close()
        memory_store.close()

    def test_stale_snapshot_fails_loudly(self, tmp_path):
        store = self._churned_store(tmp_path / "store")
        snapshot = store.snapshot()
        assert len(snapshot.hashes()) == 3  # live before the compaction
        store.compact()
        with pytest.raises(ConfigurationError, match="invalidated by compact"):
            snapshot.hashes()
        with pytest.raises(ConfigurationError, match="take a new snapshot"):
            snapshot.count()
        fresh = store.snapshot()
        assert len(fresh.hashes()) == 3
        store.close()

    def test_compact_keeps_writability(self, tmp_path):
        store = self._churned_store(tmp_path / "store")
        store.compact()
        extra = _record(seed=9)
        assert store.put(extra)
        assert store.contains(extra.content_hash)
        assert store.verify_index() == 4
        store.close()

    def test_compact_refuses_corrupt_shard(self, tmp_path):
        # The index claims bytes that no longer round-trip: compaction
        # must abort before destroying anything.
        store = self._churned_store(tmp_path / "store")
        shard = next(iter(store.root.glob("shard-*.jsonl")))
        raw = shard.read_bytes()
        record = json.loads(raw.splitlines()[0])
        # Rewrite in place, same length, corrupted hash field.
        mangled = raw.replace(
            record["content_hash"].encode(), b"f" * len(record["content_hash"])
        )
        shard.write_bytes(mangled)
        with pytest.raises(ConfigurationError, match="compact aborted"):
            store.compact()
        store.close()
