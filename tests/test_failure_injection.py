"""Failure injection: the engine must turn bad behaviour into loud errors.

The model forbids certain behaviours (overtaking, acting after halting,
removing tokens — the latter is unrepresentable by construction).  These
tests inject misbehaving agents and schedules and assert the engine
fails fast with the right exception instead of corrupting the run.
"""

from __future__ import annotations

import pytest

from repro.errors import ProtocolViolation, SimulationError, SimulationLimitExceeded
from repro.ring.placement import Placement
from repro.sim.actions import Action, NodeView
from repro.sim.agent import Agent
from repro.sim.engine import Engine
from repro.sim.scheduler import Scheduler


class CrashingAgent(Agent):
    """Raises inside its protocol after a few steps (a buggy algorithm)."""

    def __init__(self, crash_after: int) -> None:
        super().__init__()
        self.crash_after = crash_after

    def protocol(self, first_view):
        for _ in range(self.crash_after):
            yield Action.move_forward()
        raise RuntimeError("injected agent crash")


class NonActionAgent(Agent):
    def protocol(self, first_view):
        yield Action.move_forward()
        yield 42  # not an Action


class FallthroughAgent(Agent):
    """Generator returns without halting or suspending."""

    def protocol(self, first_view):
        yield Action.move_forward()


class SpinnerAgent(Agent):
    def protocol(self, first_view):
        while True:
            yield Action.move_forward()


class EmptyBatchScheduler(Scheduler):
    def next_batch(self, enabled):
        return []


class StaleAgentScheduler(Scheduler):
    """Returns an agent id that is never enabled (a broken scheduler)."""

    def next_batch(self, enabled):
        return [max(enabled) + 1000]


def _engine(agents, n=8, scheduler=None, max_steps=None):
    homes = tuple(range(0, 2 * len(agents), 2))
    placement = Placement(ring_size=n, homes=homes)
    return Engine(placement, agents, scheduler=scheduler, max_steps=max_steps)


class TestAgentFailures:
    def test_agent_crash_propagates(self):
        engine = _engine([CrashingAgent(3)])
        with pytest.raises(RuntimeError, match="injected agent crash"):
            engine.run()

    def test_non_action_yield_is_protocol_violation(self):
        engine = _engine([NonActionAgent()])
        with pytest.raises(ProtocolViolation):
            engine.run()

    def test_generator_fallthrough_is_protocol_violation(self):
        engine = _engine([FallthroughAgent()])
        with pytest.raises(ProtocolViolation):
            engine.run()

    def test_livelock_hits_step_cap(self):
        engine = _engine([SpinnerAgent()], max_steps=50)
        with pytest.raises(SimulationLimitExceeded) as excinfo:
            engine.run()
        assert "50" in str(excinfo.value)

    def test_partial_failure_leaves_other_agent_state_inspectable(self):
        crasher = CrashingAgent(2)
        spinner = SpinnerAgent()
        engine = _engine([crasher, spinner], max_steps=1000)
        with pytest.raises(RuntimeError):
            engine.run()
        # The run aborted, but the engine's bookkeeping stays queryable.
        assert engine.steps > 0
        assert engine.metrics.total_moves > 0


class TestSchedulerFailures:
    def test_empty_batch_is_simulation_error(self):
        engine = _engine([SpinnerAgent()], scheduler=EmptyBatchScheduler(), max_steps=100)
        with pytest.raises(SimulationError):
            engine.run()

    def test_stale_agent_id_is_keyerror_free(self):
        # A scheduler naming an unknown agent: the engine re-checks
        # enabledness and must fail loudly, not corrupt state.
        engine = _engine([SpinnerAgent()], scheduler=StaleAgentScheduler(), max_steps=100)
        with pytest.raises((SimulationError, KeyError)):
            engine.run()


class TestRingLevelInjection:
    def test_out_of_order_dequeue_rejected(self):
        # Simulate an overtake attempt at the substrate level.
        engine = _engine([SpinnerAgent(), SpinnerAgent()])
        ring = engine.ring
        ring.enqueue(99, 5)
        ring.enqueue(98, 5)
        with pytest.raises(SimulationError):
            ring.dequeue(98, 5)  # 99 is at the head: overtaking forbidden

    def test_double_settle_rejected(self):
        engine = _engine([SpinnerAgent()])
        ring = engine.ring
        ring.settle(77, 3)
        with pytest.raises(SimulationError):
            ring.settle(77, 4)


class TestViewIntegrity:
    def test_views_are_immutable(self):
        view = NodeView(tokens=1, agents_present=0)
        with pytest.raises(AttributeError):
            view.tokens = 5

    def test_actions_are_immutable(self):
        action = Action.move_forward()
        with pytest.raises(AttributeError):
            action.move = None
