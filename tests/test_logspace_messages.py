"""Message-level tests for Algorithm 3: the leader's tBase arithmetic.

The leader walks its segment and hands the j-th follower (1-indexed)
``tBase = fNum - (j-1)``: exactly the number of token nodes the
follower must observe to land on the nearest base node.  These tests
capture the actual broadcasts from executions and check the arithmetic
against the paper, including the b = k/(fNum+1) derivation followers
use for the n != ck pattern.
"""

from __future__ import annotations


from repro.core.messages import LeaderNotice
from repro.experiments.runner import build_engine
from repro.ring.placement import (
    Placement,
    periodic_placement,
    placement_from_distances,
)
from repro.sim.trace import TraceEventKind, TraceRecorder


def _run_with_broadcasts(placement: Placement):
    trace = TraceRecorder(keep=lambda e: e.kind is TraceEventKind.BROADCAST)
    engine = build_engine("known_k_logspace", placement, trace=trace)
    engine.run()
    notices = [
        event for event in trace.events if isinstance(event.detail, LeaderNotice)
    ]
    return engine, notices


class TestLeaderNotices:
    def test_single_leader_counts_down(self):
        # Aperiodic ring: one leader, k-1 followers, tBase counts down
        # from fNum to 1 in the order the leader meets them.
        placement = placement_from_distances((5, 7, 4, 8))
        engine, notices = _run_with_broadcasts(placement)
        t_bases = [event.detail.t_base for event in notices]
        f_num = notices[0].detail.f_num
        assert f_num == 3  # k - 1 followers in the single segment
        assert t_bases == [3, 2, 1]

    def test_notice_count_equals_followers(self):
        placement = placement_from_distances((2, 2, 1, 5))
        engine, notices = _run_with_broadcasts(placement)
        followers = sum(
            1
            for agent_id in engine.agent_ids
            if engine.agent(agent_id).is_leader is False
        )
        assert len(notices) == followers

    def test_periodic_ring_per_segment_fnum(self):
        # 3-fold symmetric ring with 3 agents per segment: 3 leaders,
        # each notifying fNum = 2 followers with tBase 2 then 1.
        placement = periodic_placement((1, 2, 3), 3)
        engine, notices = _run_with_broadcasts(placement)
        assert all(event.detail.f_num == 2 for event in notices)
        t_bases = sorted(event.detail.t_base for event in notices)
        assert t_bases == [1, 1, 1, 2, 2, 2]

    def test_follower_base_count_derivation(self):
        # b = k / (fNum + 1): followers of the 3-fold ring derive b = 3.
        placement = periodic_placement((1, 2, 3), 3)
        engine, _ = _run_with_broadcasts(placement)
        followers = [
            engine.agent(agent_id)
            for agent_id in engine.agent_ids
            if engine.agent(agent_id).is_leader is False
        ]
        assert followers
        assert all(agent.b == 3 for agent in followers)

    def test_tbase_reaches_base_exactly(self):
        # Semantic check: a follower receiving tBase must observe
        # exactly tBase token nodes to stand on a base node.  We verify
        # post-hoc: every follower's tokens_seen matches its t_base.
        placement = placement_from_distances((5, 7, 4, 8))
        engine, notices = _run_with_broadcasts(placement)
        followers = [
            engine.agent(agent_id)
            for agent_id in engine.agent_ids
            if engine.agent(agent_id).is_leader is False
        ]
        for follower in followers:
            assert follower.tokens_seen == follower.t_base

    def test_no_notices_when_all_leaders(self):
        placement = placement_from_distances((4, 4, 4, 4))
        _, notices = _run_with_broadcasts(placement)
        assert notices == []
