"""Tests for the uniform-deployment verifier (E8: Figure 2)."""

from __future__ import annotations

import pytest

from repro.analysis.verification import (
    allowed_gaps,
    require_uniform_deployment,
    verify_positions,
)
from repro.errors import VerificationError
from repro.experiments.runner import build_engine
from repro.ring.placement import Placement, equidistant_placement


class TestAllowedGaps:
    def test_exact(self):
        assert allowed_gaps(16, 4) == (4, 4)

    def test_with_remainder(self):
        assert allowed_gaps(10, 4) == (2, 3)

    def test_k_equals_n(self):
        assert allowed_gaps(5, 5) == (1, 1)


class TestVerifyPositions:
    def test_paper_figure_2(self):
        # Figure 2: n = 16, k = 4 — agents every 4 nodes (the caption's
        # d = 3 counts the nodes strictly between adjacent agents).
        assert verify_positions([0, 4, 8, 12], 16).ok

    def test_uneven_but_legal(self):
        # n = 10, k = 4: gaps must be two 3s and two 2s.
        assert verify_positions([0, 3, 6, 8], 10).ok

    def test_wrong_gap_detected(self):
        report = verify_positions([0, 1, 8, 12], 16)
        assert not report.ok
        assert any("outside" in failure for failure in report.failures)

    def test_wrong_large_gap_count_detected(self):
        # n = 10, k = 4 needs exactly two gaps of 3; 0,2,4,7 has gaps
        # (2,2,3,3)... adjust to get a wrong multiset: 0,2,4,6 -> gaps
        # (2,2,2,4): 4 is out of range, caught by the range check.
        report = verify_positions([0, 2, 4, 6], 10)
        assert not report.ok

    def test_duplicate_positions(self):
        report = verify_positions([3, 3, 8], 12)
        assert not report.ok
        assert "share a node" in report.failures[0]

    def test_no_agents(self):
        assert not verify_positions([], 5).ok

    def test_report_describe(self):
        ok_text = verify_positions([0, 4, 8, 12], 16).describe()
        assert ok_text.startswith("UNIFORM")
        bad_text = verify_positions([0, 1, 2, 3], 16).describe()
        assert bad_text.startswith("NOT UNIFORM")

    def test_bool_protocol(self):
        assert bool(verify_positions([0, 8], 16))
        assert not bool(verify_positions([0, 1], 16))


class TestEngineVerification:
    def test_require_raises_on_unfinished_run(self):
        engine = build_engine("known_k_full", equidistant_placement(12, 3))
        engine.run_rounds(1)  # agents now in transit
        with pytest.raises(VerificationError):
            require_uniform_deployment(engine, require_halted=True)

    def test_require_passes_after_full_run(self):
        engine = build_engine("known_k_full", equidistant_placement(12, 3))
        engine.run()
        report = require_uniform_deployment(engine, require_halted=True)
        assert report.ok

    def test_halted_requirement_detects_suspended(self):
        engine = build_engine("unknown", Placement(ring_size=9, homes=(0, 4, 6)))
        engine.run()
        report = require_uniform_deployment(engine, require_suspended=True)
        assert report.ok
        with pytest.raises(VerificationError):
            require_uniform_deployment(engine, require_halted=True)
