"""Tests for the interleaving model checker (``repro.mc``).

Two layers:

* fast tier-1 tests — small instances, the injected-bug self-test and
  the checker's own plumbing (determinism, truncation, cycle and
  safety-property detection, counterexample replay);
* ``@pytest.mark.mc`` tests — the exhaustive acceptance grid: all four
  algorithms on every placement of (6,2), (6,3) and (8,2), run in the
  dedicated CI job.
"""

from __future__ import annotations

import math

import pytest

from repro.mc import (
    MemoryBound,
    all_placements,
    check_interleavings,
    exhaust_placements,
    replay_counterexample,
)
from repro.mc.selftest import wake_race_agents
from repro.analysis.verification import verify_uniform_deployment
from repro.experiments.runner import ALGORITHMS
from repro.ring.placement import Placement
from repro.sim.actions import Action
from repro.sim.agent import Agent
from repro.sim.engine import Engine
from repro.sim.scheduler import (
    BurstScheduler,
    ChaosScheduler,
    LaggardScheduler,
    RandomScheduler,
    ReplayScheduler,
)

#: The pinned instance on which the injected wake-race bug survives the
#: synchronous scheduler AND every sampled adversary below, yet the
#: exhaustive checker finds a violating interleaving (see
#: repro/mc/selftest.py).
BUG_PLACEMENT = Placement(ring_size=8, homes=(0, 1, 3))
BUG_K = 3


# ----------------------------------------------------------------------
# Fast exhaustive checks (tier-1)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_small_instance_exhausts_clean(algorithm):
    placement = Placement(ring_size=5, homes=(0, 2))
    result = check_interleavings(algorithm, placement)
    assert result.ok
    assert result.complete
    assert not result.violations
    assert result.explored > 1
    assert result.terminals >= 1
    assert result.transitions >= result.explored - 1  # spanning the graph
    # The sleep-set reduction prunes the commuting interleavings that
    # full expansion would only discover as memo hits.
    assert result.por_skipped > 0
    full = check_interleavings(algorithm, placement, por=False)
    assert full.deduped > 0  # interleaving commutation collapses states
    assert full.explored == result.explored
    assert full.terminal_keys == result.terminal_keys
    assert full.transitions > result.transitions


def test_result_counts_are_deterministic():
    placement = Placement(ring_size=6, homes=(0, 2))
    first = check_interleavings("known_k_full", placement)
    second = check_interleavings("known_k_full", placement)
    assert first == second


def test_rotated_placements_explore_identical_state_counts():
    # The canonical memoisation makes the search rotation-independent.
    first = check_interleavings("known_k_full", Placement(6, homes=(0, 2)))
    second = check_interleavings("known_k_full", Placement(6, homes=(1, 3)))
    assert first.explored == second.explored
    assert first.transitions == second.transitions
    assert first.terminals == second.terminals


def test_depth_limit_truncates_search():
    placement = Placement(ring_size=6, homes=(0, 3))
    result = check_interleavings("known_k_full", placement, depth_limit=5)
    assert not result.complete
    assert not result.ok
    assert result.max_depth <= 5
    assert not result.violations  # truncation is not a violation


def test_max_states_truncates_search():
    placement = Placement(ring_size=6, homes=(0, 3))
    result = check_interleavings("known_k_full", placement, max_states=10)
    assert not result.complete
    assert result.explored <= 11


def test_unknown_algorithm_name_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        check_interleavings("no_such_algorithm", Placement(5, homes=(0, 2)))


# ----------------------------------------------------------------------
# The checker finds deliberately injected bugs (self-test)
# ----------------------------------------------------------------------


def _sampled_run_is_uniform(scheduler=None):
    engine = Engine(
        placement=BUG_PLACEMENT,
        agents=wake_race_agents(BUG_K),
        scheduler=scheduler,
    )
    engine.run()
    return verify_uniform_deployment(engine, require_halted=True).ok


@pytest.mark.parametrize(
    "scheduler",
    [
        None,  # SynchronousScheduler
        RandomScheduler(seed=0),
        RandomScheduler(seed=1),
        RandomScheduler(seed=2),
        RandomScheduler(seed=3),
        BurstScheduler(seed=1),
        ChaosScheduler(seed=1),
        LaggardScheduler([0], seed=1),
        LaggardScheduler([2], seed=3),
    ],
    ids=lambda s: "sync" if s is None else s.describe(),
)
def test_wake_race_bug_survives_every_sampled_scheduler(scheduler):
    # The defect is invisible to one-sample-per-configuration testing:
    # every scheduler the repo ships deploys uniformly on this instance.
    assert _sampled_run_is_uniform(scheduler) is True


def test_wake_race_bug_is_found_exhaustively_and_replays():
    result = check_interleavings(
        "wake_race(known_k_logspace)",
        BUG_PLACEMENT,
        factory=lambda: wake_race_agents(BUG_K),
        require_halted=True,
        require_suspended=False,
    )
    assert result.violations, "the exhaustive search must find the race"
    violation = result.violations[0]
    assert violation.kind == "terminal"
    assert violation.schedule
    assert "schedule" in violation.replay_line() or "ReplayScheduler" in violation.replay_line()

    # Replaying the counterexample schedule reproduces the identical
    # violation message, deterministically, on a fresh engine.
    engine, messages = replay_counterexample(
        violation,
        factory=lambda: wake_race_agents(BUG_K),
        require_halted=True,
        require_suspended=False,
    )
    assert violation.message in messages
    assert engine.quiescent
    first_positions = dict(engine.final_positions())

    engine2, messages2 = replay_counterexample(
        violation,
        factory=lambda: wake_race_agents(BUG_K),
        require_halted=True,
        require_suspended=False,
    )
    assert messages2 == messages
    assert dict(engine2.final_positions()) == first_positions


def test_wake_race_counterexample_replays_through_replay_scheduler():
    result = check_interleavings(
        "wake_race(known_k_logspace)",
        BUG_PLACEMENT,
        factory=lambda: wake_race_agents(BUG_K),
        require_halted=True,
        require_suspended=False,
    )
    violation = result.violations[0]
    engine = Engine(
        placement=BUG_PLACEMENT,
        agents=wake_race_agents(BUG_K),
        scheduler=ReplayScheduler(violation.schedule),
    )
    engine.run()
    report = verify_uniform_deployment(engine, require_halted=True)
    assert not report.ok
    assert report.describe() in violation.message or violation.message in report.describe()


def test_checker_proves_bug_unreachable_on_other_placements():
    # No false positives: on this placement the injected defect is
    # unreachable under EVERY schedule, and the checker proves it.
    placement = Placement(ring_size=6, homes=(0, 1, 4))
    result = check_interleavings(
        "wake_race(known_k_logspace)",
        placement,
        factory=lambda: wake_race_agents(3),
        require_halted=True,
        require_suspended=False,
    )
    assert result.ok
    assert not result.violations


# ----------------------------------------------------------------------
# Safety-property and cycle detection plumbing
# ----------------------------------------------------------------------


class _ForeverSpinner(Agent):
    """Circles the ring forever: a guaranteed livelock cycle."""

    def protocol(self, first_view):
        while True:
            yield Action.move_forward()


def test_cycle_detection_flags_livelock_and_replays():
    placement = Placement(ring_size=4, homes=(0,))
    result = check_interleavings(
        "forever_spinner",
        placement,
        factory=lambda: [_ForeverSpinner()],
        require_halted=True,
        require_suspended=False,
    )
    assert result.violations
    violation = result.violations[0]
    assert violation.kind == "cycle"
    # Replaying the livelock schedule revisits a state on its own path.
    _, messages = replay_counterexample(
        violation, factory=lambda: [_ForeverSpinner()]
    )
    assert violation.message in messages


def test_memory_bound_property_fires_and_replays():
    placement = Placement(ring_size=6, homes=(0, 3))
    tight = (MemoryBound(1),)  # every real agent exceeds one bit
    result = check_interleavings(
        "known_k_full", placement, safety=tight
    )
    assert result.violations
    violation = result.violations[0]
    assert violation.kind == "safety"
    assert violation.property_name == "memory-bound"
    _, messages = replay_counterexample(violation, safety=tight)
    assert violation.message in messages


# ----------------------------------------------------------------------
# Exhaustive acceptance grid (second CI job)
# ----------------------------------------------------------------------


#: Rotation-distinct placement counts (necklace classes) per grid cell;
#: the raw one-home-at-0 enumeration has C(n-1, k-1) entries.
NECKLACE_COUNTS = {(6, 2): 3, (6, 3): 4, (8, 2): 4}


@pytest.mark.mc
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("n,k", [(6, 2), (6, 3), (8, 2)])
def test_exhaustive_grid_all_placements_zero_violations(algorithm, n, k):
    results = exhaust_placements(algorithm, n, k)
    assert len(results) == NECKLACE_COUNTS[(n, k)]
    failures = [r.describe() for r in results if not r.ok]
    assert not failures, f"{len(failures)} placements failed: {failures[:3]}"
    assert all(r.complete for r in results)
    assert all(r.terminals >= 1 for r in results)
    assert sum(r.explored for r in results) > 0


def test_placement_dedup_counts_necklace_classes():
    # (8, 2): distance multisets {1,7},{2,6},{3,5},{4,4} -> 4 classes,
    # versus the raw C(7, 1) = 7 one-home-fixed placements.
    deduped = list(all_placements(8, 2))
    assert len(deduped) == 4
    raw = list(all_placements(8, 2, dedupe_rotations=False))
    assert len(raw) == math.comb(7, 1)
    # Dedup keeps one representative per rotation class of the distance
    # sequence and never invents a placement.
    raw_classes = {
        min(p.distances[i:] + p.distances[:i] for i in range(len(p.distances)))
        for p in raw
    }
    kept_classes = {
        min(p.distances[i:] + p.distances[:i] for i in range(len(p.distances)))
        for p in deduped
    }
    assert kept_classes == raw_classes


@pytest.mark.mc
def test_exhaustive_grid_is_nontrivial():
    # Exhaustiveness means many states, not one trace: sanity-check the
    # state counts the README reports.
    results = exhaust_placements("unknown", 6, 2)
    assert sum(r.explored for r in results) > 1000
    assert sum(r.por_skipped for r in results) > 500
    full = exhaust_placements("unknown", 6, 2, por=False)
    assert sum(r.deduped for r in full) > 300
    assert sum(r.explored for r in full) == sum(r.explored for r in results)
