"""Tests for the typed algorithm/scheduler registries and spec strings."""

from __future__ import annotations

import random
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import ALGORITHMS, build_engine
from repro.registry import (
    SchedulerSpec,
    algorithm_names,
    build_scheduler,
    format_scheduler_spec,
    get_algorithm,
    get_scheduler,
    parse_scheduler_spec,
    registry_dump,
    scheduler_names,
)
from repro.ring.placement import random_placement
from repro.sim.scheduler import (
    BurstScheduler,
    ChaosScheduler,
    LaggardScheduler,
    RandomScheduler,
    ReplayScheduler,
    SynchronousScheduler,
)


class TestAlgorithmRegistry:
    def test_experiment_names_exclude_selftest(self):
        assert algorithm_names() == [
            "known_k_full",
            "known_k_logspace",
            "known_n_full",
            "unknown",
        ]

    def test_selftest_names_opt_in(self):
        assert "wake_race" in algorithm_names(include_selftest=True)
        assert get_algorithm("wake_race").selftest is True

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigurationError, match="known_k_full"):
            get_algorithm("nope")

    def test_table1_metadata(self):
        info = get_algorithm("known_k_logspace")
        assert info.knowledge == "k"
        assert info.memory_bound == "O(log n)"
        assert info.time_bound == "O(n log k)"
        assert info.halts is True
        relaxed = get_algorithm("unknown")
        assert relaxed.halts is False
        assert relaxed.knowledge == "none"

    def test_make_agents_respects_knowledge(self):
        k_aware = get_algorithm("known_k_full").make_agents(3)
        assert len(k_aware) == 3 and all(agent.k == 3 for agent in k_aware)
        n_aware = get_algorithm("known_n_full").make_agents(3, ring_size=24)
        assert all(agent.n == 24 for agent in n_aware)

    def test_agents_are_fresh_instances(self):
        info = get_algorithm("unknown")
        assert not set(info.make_agents(3)) & set(info.make_agents(3))


class TestSchedulerRegistry:
    def test_registered_names(self):
        assert scheduler_names() == [
            "burst",
            "chaos",
            "laggard",
            "random",
            "replay",
            "sync",
        ]

    def test_classes_and_time_semantics(self):
        assert get_scheduler("sync").cls is SynchronousScheduler
        assert get_scheduler("sync").counts_time is True
        for name, cls in [
            ("random", RandomScheduler),
            ("laggard", LaggardScheduler),
            ("burst", BurstScheduler),
            ("chaos", ChaosScheduler),
            ("replay", ReplayScheduler),
        ]:
            info = get_scheduler(name)
            assert info.cls is cls
            assert info.counts_time is False

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigurationError, match="laggard"):
            get_scheduler("nope")

    def test_defaults_match_historical_sweep_factories(self):
        # The pre-registry SCHEDULER_SPECS table pinned these parameters;
        # registry defaults must keep archived sweep rows reproducible.
        assert build_scheduler("laggard", seed=5).describe() == (
            "LaggardScheduler(laggards=[0], patience=100)"
        )
        assert build_scheduler("burst", seed=5).describe() == "BurstScheduler(burst=40)"
        assert build_scheduler("chaos", seed=5).describe() == "ChaosScheduler(epoch=30)"

    def test_context_seed_flows_into_rng(self):
        enabled = list(range(50))
        for seed in (0, 7):
            via_registry = build_scheduler("random", seed=seed)
            direct = RandomScheduler(seed=seed)
            assert [via_registry.next_batch(enabled) for _ in range(20)] == [
                direct.next_batch(enabled) for _ in range(20)
            ]

    def test_pinned_seed_beats_context_seed(self):
        scheduler = build_scheduler("random:seed=3", seed=999)
        assert scheduler.describe() == "RandomScheduler(seed=3)"


class TestSpecStrings:
    ROUND_TRIPS = [
        "sync",
        "random",
        "random:seed=7",
        "laggard:victims=0,patience=5,seed=3",
        "laggard:victims=0-2-5",
        "burst:burst=10",
        "chaos:epoch=4,seed=1",
        "replay:log=0-1-1-0",
    ]

    @pytest.mark.parametrize("text", ROUND_TRIPS)
    def test_parse_format_parse_round_trip(self, text):
        spec = parse_scheduler_spec(text)
        formatted = format_scheduler_spec(spec)
        assert parse_scheduler_spec(formatted) == spec
        # The canonical form is a fixed point of another round trip.
        assert format_scheduler_spec(parse_scheduler_spec(formatted)) == formatted

    def test_canonical_form_is_normalised(self):
        # Alias, whitespace and argument order all normalise away.
        messy = " laggard: seed=3 , victim=0 , patience=5 "
        assert format_scheduler_spec(messy) == "laggard:victims=0,patience=5,seed=3"

    def test_alias_and_canonical_name_parse_identically(self):
        assert parse_scheduler_spec("laggard:victim=4") == parse_scheduler_spec(
            "laggard:victims=4"
        )

    def test_int_list_values(self):
        spec = parse_scheduler_spec("laggard:victims=0-2-5")
        assert spec.arg_dict()["victims"] == (0, 2, 5)

    def test_parsed_spec_passthrough(self):
        spec = parse_scheduler_spec("burst:burst=9")
        assert parse_scheduler_spec(spec) is spec

    def test_spec_objects_are_hashable_and_comparable(self):
        a = parse_scheduler_spec("laggard:patience=5,victim=0")
        b = parse_scheduler_spec("laggard:victims=0,patience=5")
        assert a == b and hash(a) == hash(b)

    @pytest.mark.parametrize(
        "bad, fragment",
        [
            ("nope", "unknown scheduler"),
            ("nope:seed=1", "unknown scheduler"),
            ("", "bad scheduler spec"),
            ("laggard:wat=1", "no parameter 'wat'"),
            ("laggard:patience", "not key=value"),
            ("laggard:patience=abc", "bad value 'abc'"),
            ("laggard:patience=1,patience=2", "given twice"),
            ("laggard:victims=x-y", "bad value 'x-y'"),
            ("sync:seed=1", "no parameter 'seed'"),
            # '-' is the list separator, so a sign would silently parse
            # as a different id list: reject stray/leading separators.
            ("laggard:victims=-1", "bad value '-1'"),
            ("laggard:victims=1--2", "bad value '1--2'"),
            ("laggard:victims=1-", "bad value '1-'"),
        ],
    )
    def test_bad_specs_explain_themselves(self, bad, fragment):
        with pytest.raises(ConfigurationError, match=fragment.replace("(", "\\(")):
            parse_scheduler_spec(bad)

    def test_unknown_scheduler_in_spec_object(self):
        with pytest.raises(ConfigurationError):
            parse_scheduler_spec(SchedulerSpec(name="nope"))

    def test_build_from_spec_string(self):
        scheduler = build_scheduler("laggard:victims=1-2,patience=4", seed=9)
        assert scheduler.describe() == (
            "LaggardScheduler(laggards=[1, 2], patience=4)"
        )

    def test_replay_spec_builds_replay_scheduler(self):
        scheduler = build_scheduler("replay:log=0-1-0")
        assert isinstance(scheduler, ReplayScheduler)
        assert scheduler.next_batch([0, 1]) == [0]
        assert scheduler.next_batch([0, 1]) == [1]

    def test_empty_int_list_round_trips(self):
        spec = parse_scheduler_spec("replay:log=")
        assert spec.arg_dict()["log"] == ()
        assert parse_scheduler_spec(format_scheduler_spec(spec)) == spec

    def test_register_scheduler_without_docstring_gets_empty_description(self):
        from repro.registry import _SCHEDULERS, register_scheduler
        from repro.sim.scheduler import Scheduler

        @register_scheduler("undocumented_test_scheduler")
        class Undocumented(Scheduler):
            pass

        try:
            info = get_scheduler("undocumented_test_scheduler")
            assert info.description == ""
        finally:
            del _SCHEDULERS["undocumented_test_scheduler"]


class TestAlgorithmsCompatView:
    def test_reads_mirror_the_registry(self):
        assert set(ALGORITHMS) == set(algorithm_names())
        factory, halts, description = ALGORITHMS["known_k_full"]
        assert halts is True and "Algorithm 1" in description
        assert factory(4, 0).k == 4

    def test_selftest_entries_are_hidden(self):
        assert "wake_race" not in ALGORITHMS
        with pytest.raises(KeyError):
            ALGORITHMS["wake_race"]

    def test_unknown_key_raises_keyerror(self):
        with pytest.raises(KeyError):
            ALGORITHMS["nope"]
        assert "nope" not in ALGORITHMS

    def test_mutation_warns_and_forwards_to_registry(self):
        from repro.core.unknown import UnknownKAgent

        with pytest.warns(DeprecationWarning):
            ALGORITHMS["compat_test"] = (
                lambda k, n: UnknownKAgent(),
                False,
                "legacy-registered",
            )
        try:
            assert get_algorithm("compat_test").halts is False
            assert ALGORITHMS["compat_test"][2] == "legacy-registered"
        finally:
            with pytest.warns(DeprecationWarning):
                del ALGORITHMS["compat_test"]
        assert "compat_test" not in ALGORITHMS

    def test_bad_legacy_tuple_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                ALGORITHMS["compat_test"] = "not a tuple"


class TestDeprecatedSweepAliases:
    def test_make_scheduler_warns_and_delegates(self):
        from repro.experiments.sweep import make_scheduler

        with pytest.warns(DeprecationWarning):
            scheduler = make_scheduler("laggard", 3)
        assert scheduler.describe() == "LaggardScheduler(laggards=[0], patience=100)"

    def test_scheduler_specs_view_builds_through_registry(self):
        from repro.experiments.sweep import SCHEDULER_SPECS

        assert set(SCHEDULER_SPECS) == set(scheduler_names())
        scheduler = SCHEDULER_SPECS["burst"](7)
        assert scheduler.describe() == "BurstScheduler(burst=40)"

    def test_scheduler_specs_view_keeps_mapping_contract(self):
        # Legacy membership tests and .get() must see dict semantics,
        # not a domain error leaking out of the registry parser.
        from repro.experiments.sweep import SCHEDULER_SPECS

        with pytest.raises(KeyError):
            SCHEDULER_SPECS["nope"]
        assert "nope" not in SCHEDULER_SPECS
        assert SCHEDULER_SPECS.get("nope") is None
        assert "sync" in SCHEDULER_SPECS


class TestRegistryDump:
    def test_dump_shape(self):
        dump = registry_dump()
        algorithms = {entry["name"]: entry for entry in dump["algorithms"]}
        schedulers = {entry["name"]: entry for entry in dump["schedulers"]}
        assert set(algorithms) >= set(algorithm_names(include_selftest=True))
        assert set(schedulers) == set(scheduler_names())
        assert algorithms["known_k_full"]["memory_bound"] == "O(k log n)"
        assert algorithms["wake_race"]["selftest"] is True
        laggard = schedulers["laggard"]
        params = {param["name"]: param for param in laggard["params"]}
        assert params["victims"]["kind"] == "int_list"
        assert params["victims"]["aliases"] == ["victim"]
        assert params["patience"]["default"] == 100
        assert params["seed"]["default"] is None  # context seed

    def test_dump_is_json_serialisable(self):
        import json

        json.dumps(registry_dump())


class TestSchedulerSpecDifferential:
    """Spec-string construction is behaviourally identical to direct calls."""

    CASES = [
        ("sync", lambda seed: SynchronousScheduler()),
        ("random", lambda seed: RandomScheduler(seed=seed)),
        ("laggard:victims=0,patience=6", lambda seed: LaggardScheduler(
            [0], patience=6, seed=seed
        )),
        ("burst:burst=11", lambda seed: BurstScheduler(burst=11, seed=seed)),
        ("chaos:epoch=9", lambda seed: ChaosScheduler(epoch=9, seed=seed)),
    ]

    @pytest.mark.parametrize("text, direct", CASES, ids=[c[0] for c in CASES])
    @pytest.mark.parametrize("algorithm", ["known_k_full", "unknown"])
    def test_byte_identical_executions(self, text, direct, algorithm):
        placement = random_placement(20, 4, random.Random(13))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no deprecation on the new path
            via_spec = build_engine(
                algorithm, placement, scheduler=build_scheduler(text, seed=21)
            )
        via_kwargs = build_engine(algorithm, placement, scheduler=direct(21))
        via_spec.run()
        via_kwargs.run()
        assert via_spec.activation_log == via_kwargs.activation_log
        assert via_spec.metrics == via_kwargs.metrics
        assert via_spec.final_positions() == via_kwargs.final_positions()
