"""Pin the batch kernels' vectorized helpers to the scalar originals.

The kernels promise that their batched arithmetic *is* the scalar
arithmetic the object agents run — :func:`minimal_rotation_index_batch`
row-for-row equal to Booth's :func:`minimal_rotation_index`,
:func:`minimal_period_batch` to the KMP :func:`minimal_period`,
:func:`bit_cost` to the agent memory-audit bit formula, and the fused
completion arithmetic in ``kernel_full`` to
:func:`repro.core.targets.target_offset`.  Fuzzed over many rows and
ring shapes, including forced-periodic rows where the rotation minimum
is ambiguous and the smallest-index tie-break is what is under test.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.analysis.sequences import minimal_period, minimal_rotation_index
from repro.core.targets import target_offset
from repro.sim.batch.kernels import (
    bit_cost,
    minimal_period_batch,
    minimal_rotation_index_batch,
)


def _random_rows(rng: random.Random, count: int, k: int) -> np.ndarray:
    rows = []
    for _ in range(count):
        style = rng.randrange(3)
        if style == 0:  # generic positive distances
            row = [rng.randint(1, 9) for _ in range(k)]
        elif style == 1:  # forced periodic: repeat a divisor-length block
            divisors = [d for d in range(1, k + 1) if k % d == 0]
            block = [rng.randint(1, 5) for _ in range(rng.choice(divisors))]
            row = (block * k)[:k]
        else:  # near-constant rows: maximal tie-break pressure
            row = [rng.choice((2, 3)) for _ in range(k)]
        rows.append(row)
    return np.asarray(rows, dtype=np.int64)


@pytest.mark.parametrize("k", [1, 2, 3, 4, 6, 8, 16])
def test_rotation_index_matches_booth(k):
    rng = random.Random(k * 1000 + 1)
    rows = _random_rows(rng, 200, k)
    batched = minimal_rotation_index_batch(rows)
    for row, got in zip(rows.tolist(), batched.tolist()):
        assert got == minimal_rotation_index(row), row


@pytest.mark.parametrize("k", [1, 2, 3, 4, 6, 8, 16])
def test_period_matches_kmp(k):
    rng = random.Random(k * 1000 + 2)
    rows = _random_rows(rng, 200, k)
    batched = minimal_period_batch(rows)
    for row, got in zip(rows.tolist(), batched.tolist()):
        assert got == minimal_period(row), row


def test_bit_cost_matches_bit_length_formula():
    values = np.concatenate(
        [
            np.arange(0, 4097),
            2 ** np.arange(13, 50),  # power-of-two boundaries
            2 ** np.arange(13, 50) - 1,
        ]
    )
    got = bit_cost(values)
    for value, bits in zip(values.tolist(), got.tolist()):
        assert bits == max(1, (value + 1).bit_length()), value


def test_completion_arithmetic_matches_target_offset():
    # The fused deployment arithmetic in kernel_full:
    #   remaining = dis_base + rank * (n // k) + min(rank, (n % k) // b)
    # must equal dis_base + target_offset(rank, n, k, base_count).
    rng = random.Random(99)
    for _ in range(300):
        k = rng.choice([1, 2, 3, 4, 6, 8])
        row = _random_rows(rng, 1, k)[0]
        n = int(row.sum())
        rank = int(minimal_rotation_index_batch(row[None, :])[0])
        period = int(minimal_period_batch(row[None, :])[0])
        base_count = k // period
        fused = rank * (n // k) + min(rank, (n % k) // base_count)
        assert fused == target_offset(rank, n, k, base_count)
