"""Scale sanity: larger rings than the unit tests, one run each.

Not benchmarks (no timing claims) — these exist so a regression that
blows up move counts or memory superlinearly is caught by the test
suite, not first noticed in a long benchmark run.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.runner import run_experiment
from repro.ring.placement import random_placement


@pytest.mark.parametrize(
    "algorithm,n,k,move_budget",
    [
        ("known_k_full", 1024, 16, 3 * 16 * 1024),
        ("known_n_full", 1024, 16, 3 * 16 * 1024),
        ("known_k_logspace", 1024, 16, 4 * 16 * 1024),
        ("unknown", 512, 8, 14 * 8 * 512),
    ],
)
def test_scale_run(algorithm, n, k, move_budget):
    placement = random_placement(n, k, random.Random(1234))
    result = run_experiment(algorithm, placement)
    assert result.ok, result.report.describe()
    assert result.total_moves <= move_budget


def test_scale_many_agents():
    # k = n/2: a half-full ring still deploys.
    placement = random_placement(256, 128, random.Random(7))
    result = run_experiment("known_k_logspace", placement)
    assert result.ok


def test_scale_dense_full_ring():
    placement = random_placement(200, 200, random.Random(8))
    result = run_experiment("known_k_full", placement)
    assert result.ok
    assert sorted(result.final_positions) == list(range(200))
