"""Property tests: scheduler spec parsing under adversarial input.

The spec-string grammar is the CLI's (and every JSON spec's) attack
surface: whatever a user types after ``--scheduler`` must either parse
into a canonical :class:`~repro.registry.SchedulerSpec` or raise
:class:`~repro.errors.ConfigurationError` with a readable message —
never an ``IndexError``/``ValueError``/``OverflowError`` traceback.
And on everything that *does* parse, ``parse -> format -> parse`` must
be the identity (the canonicalisation contract the registry documents).
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.registry import (
    format_scheduler_spec,
    get_scheduler,
    parse_scheduler_spec,
    scheduler_names,
)

# -- generators --------------------------------------------------------------

_names = st.sampled_from(scheduler_names())


@st.composite
def valid_specs(draw) -> str:
    """A syntactically valid spec string with plausible typed values."""
    name = draw(_names)
    info = get_scheduler(name)
    parts = []
    for param in draw(st.permutations(info.params)):
        if not draw(st.booleans()):
            continue  # leave this parameter unpinned
        if param.kind == "int_list":
            values = draw(st.lists(st.integers(0, 99), min_size=1, max_size=4))
            parts.append(f"{param.name}={'-'.join(map(str, values))}")
        else:
            parts.append(f"{param.name}={draw(st.integers(0, 10**30))}")
    return name if not parts else f"{name}:{','.join(parts)}"


_junk = st.text(
    alphabet=st.characters(codec="utf-8", max_codepoint=0x2FFF),
    max_size=40,
)


# -- properties --------------------------------------------------------------

class TestAdversarialParsing:
    @given(_junk)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            spec = parse_scheduler_spec(text)
        except ConfigurationError:
            return  # rejected loudly, as designed
        # Accepted input must round-trip canonically.
        assert parse_scheduler_spec(format_scheduler_spec(spec)) == spec

    @given(_names, _junk)
    def test_junk_arguments_never_crash(self, name, junk):
        try:
            spec = parse_scheduler_spec(f"{name}:{junk}")
        except ConfigurationError:
            return
        assert spec.name == name

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            ":",
            "random:",  # trailing colon, no args: accepted as bare name
            "random:seed",  # no '=' -> rejected
            "random:=5",  # empty key -> rejected
            "random:seed=",  # empty value -> rejected
            "random:seed=1,seed=2",  # duplicate key -> rejected
            "laggard:victims=",  # empty int_list IS valid (no victims)
            "laggard:victims=1--2",  # stray separator -> rejected
            "laggard:victims=-1",  # leading sign -> rejected
            "random:seed=∞",  # unicode junk value -> rejected
            "\x00",
        ],
    )
    def test_edge_case_strings_raise_cleanly_or_parse(self, text):
        try:
            spec = parse_scheduler_spec(text)
        except ConfigurationError:
            return
        assert parse_scheduler_spec(format_scheduler_spec(spec)) == spec

    def test_huge_ints_parse_without_overflow(self):
        spec = parse_scheduler_spec(f"random:seed={10**100}")
        assert dict(spec.args)["seed"] == 10**100
        spec.build()  # and the scheduler actually constructs

    def test_empty_int_list_is_the_empty_tuple(self):
        spec = parse_scheduler_spec("laggard:victims=")
        assert dict(spec.args)["victims"] == ()


class TestRoundTrip:
    @given(valid_specs())
    def test_parse_format_parse_is_the_identity(self, text):
        parsed = parse_scheduler_spec(text)
        canonical = format_scheduler_spec(parsed)
        assert parse_scheduler_spec(canonical) == parsed
        # Formatting is idempotent on canonical strings.
        assert format_scheduler_spec(canonical) == canonical

    @given(valid_specs(), st.integers(0, 2**31))
    def test_parsed_specs_build_or_reject_cleanly(self, text, seed):
        try:
            scheduler = parse_scheduler_spec(text).build(seed=seed)
        except ConfigurationError:
            return  # semantically rejected (e.g. chaos:epoch=0) — cleanly
        assert scheduler.next_batch([0, 1, 2])  # non-empty batch contract

    def test_degenerate_parameters_rejected_at_construction(self):
        # chaos:epoch=0 used to construct fine and ZeroDivisionError on
        # the first batch (found by the property above) — both now fail
        # loudly while the spec string is still in view.
        with pytest.raises(ConfigurationError, match="epoch must be >= 1"):
            parse_scheduler_spec("chaos:epoch=0").build()
        with pytest.raises(ConfigurationError, match="burst length must be >= 1"):
            parse_scheduler_spec("burst:burst=0").build()
