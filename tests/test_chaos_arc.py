"""Tests for the ChaosScheduler and the generalised arc placement."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiment
from repro.ring.placement import arc_packed_placement, quarter_packed_placement, random_placement
from repro.sim.scheduler import ChaosScheduler

import random


class TestChaosScheduler:
    def test_batches_are_singletons_from_enabled(self):
        scheduler = ChaosScheduler(epoch=5, seed=1)
        for _ in range(40):
            (choice,) = scheduler.next_batch([2, 5, 9])
            assert choice in (2, 5, 9)

    def test_single_enabled_agent_always_runs(self):
        scheduler = ChaosScheduler(epoch=3, seed=1)
        for _ in range(20):
            assert scheduler.next_batch([7]) == [7]

    def test_describe(self):
        assert "epoch=4" in ChaosScheduler(epoch=4).describe()

    @pytest.mark.parametrize(
        "algorithm", ["known_k_full", "known_n_full", "known_k_logspace", "unknown"]
    )
    def test_all_algorithms_survive_chaos(self, algorithm):
        rng = random.Random(42)
        for seed in range(3):
            placement = random_placement(24, 5, rng)
            result = run_experiment(
                algorithm, placement, scheduler=ChaosScheduler(epoch=17, seed=seed)
            )
            assert result.ok, f"{algorithm} seed {seed}: {result.report.describe()}"


class TestArcPlacement:
    def test_quarter_is_arc_quarter(self):
        assert quarter_packed_placement(40, 10) == arc_packed_placement(40, 10, 0.25)

    def test_half_arc(self):
        placement = arc_packed_placement(20, 10, 0.5)
        assert placement.homes == tuple(range(10))

    def test_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            arc_packed_placement(20, 11, 0.5)

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            arc_packed_placement(20, 5, 0.0)
        with pytest.raises(ConfigurationError):
            arc_packed_placement(20, 5, 1.0)

    @pytest.mark.parametrize("fraction", [0.125, 0.25, 0.5, 0.75])
    def test_deployment_from_any_arc(self, fraction):
        placement = arc_packed_placement(32, 4, fraction)
        result = run_experiment("known_k_full", placement)
        assert result.ok
        # The tighter the packing, the more the agents must move: at
        # least (k - fits-in-place) * something; check the Theorem 1
        # flavour bound total >= k*n*(1-fraction)/4 loosely.
        assert result.total_moves >= 32  # everyone crosses some arc
