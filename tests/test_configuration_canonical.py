"""Configuration hashability/equality: canonical under ring rotation.

The model checker memoises visited states on ``hash(snapshot)`` /
``snapshot == snapshot``; these tests pin the contract directly:
snapshots of the same global state are equal and hash-equal, snapshots
of rotated copies of the state are equal (the ring is anonymous), and
distinct states never compare equal.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ALGORITHMS, build_engine
from repro.ring.configuration import Configuration, LocalConfiguration
from repro.ring.placement import Placement


def _rotate(placement: Placement, shift: int) -> Placement:
    n = placement.ring_size
    return Placement(
        ring_size=n, homes=tuple((home + shift) % n for home in placement.homes)
    )


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_two_engines_same_state_equal_and_hash_equal(algorithm):
    placement = Placement(ring_size=8, homes=(0, 3, 5))
    first = build_engine(algorithm, placement)
    second = build_engine(algorithm, placement)
    assert first.snapshot() == second.snapshot()
    assert hash(first.snapshot()) == hash(second.snapshot())
    first.run()
    second.run()
    assert first.snapshot() == second.snapshot()
    assert hash(first.snapshot()) == hash(second.snapshot())


@pytest.mark.parametrize("shift", [1, 2, 5])
def test_rotated_placements_produce_equal_snapshots(shift):
    # The ring is anonymous: the same execution on a rotated ring is the
    # same global state, and the canonical form quotients the rotation.
    placement = Placement(ring_size=8, homes=(0, 2, 5))
    rotated = _rotate(placement, shift)
    first = build_engine("known_k_full", placement)
    second = build_engine("known_k_full", rotated)
    assert first.snapshot() == second.snapshot()
    assert hash(first.snapshot()) == hash(second.snapshot())
    first.run()
    second.run()
    assert first.snapshot() == second.snapshot()
    assert hash(first.snapshot()) == hash(second.snapshot())


def test_snapshot_orbit_deduplicates_in_a_set():
    placement = Placement(ring_size=6, homes=(0, 2))
    snapshots = {
        build_engine("known_k_full", _rotate(placement, shift)).snapshot()
        for shift in range(6)
    }
    assert len(snapshots) == 1


def test_distinct_states_never_compare_equal():
    # Walk one execution; every per-step snapshot is a distinct state
    # (the checker proved this execution graph acyclic at this size).
    engine = build_engine("known_k_full", Placement(6, homes=(0, 2)), record_views=True)
    seen = [engine.snapshot()]
    while not engine.quiescent:
        engine.step(engine.enabled_agents()[0])
        snapshot = engine.snapshot()
        for earlier in seen:
            assert snapshot != earlier
        seen.append(snapshot)
    assert len(seen) == engine.steps + 1


def test_diverged_fork_snapshot_differs():
    engine = build_engine("known_k_full", Placement(6, homes=(0, 3)), record_views=True)
    for _ in range(4):
        engine.step(engine.enabled_agents()[0])
    fork = engine.fork()
    assert fork.snapshot() == engine.snapshot()
    fork.step(fork.enabled_agents()[-1])
    assert fork.snapshot() != engine.snapshot()


def test_canonical_is_cached_and_stable():
    snapshot = build_engine("known_k_full", Placement(6, homes=(0, 2))).snapshot()
    first = snapshot.canonical()
    assert snapshot.canonical() is first  # cached on the frozen instance
    assert first[0] == 6  # leads with the ring size


def test_unstarted_agent_distinguished_from_started():
    # Two configurations identical except for the started flags must not
    # alias: a never-started agent behaves differently on activation.
    engine = build_engine("known_k_full", Placement(6, homes=(0, 2)))
    base = engine.snapshot()
    flipped = Configuration(
        ring_size=base.ring_size,
        agent_states=base.agent_states,
        tokens=base.tokens,
        inbox_sizes=base.inbox_sizes,
        staying=base.staying,
        queues=base.queues,
        inboxes=base.inboxes,
        started={agent_id: True for agent_id in base.agent_states},
    )
    assert base != flipped
    assert base.started == {0: False, 1: False}


def test_configuration_equality_rejects_other_types():
    snapshot = build_engine("known_k_full", Placement(5, homes=(0,))).snapshot()
    assert snapshot != "not a configuration"
    assert (snapshot == 42) is False


def test_local_configuration_keeps_fieldwise_equality():
    # Lemma 1 units are compared fieldwise, not canonically.
    first = LocalConfiguration(tokens=1, staying_states=("x",), queued_states=())
    second = LocalConfiguration(tokens=1, staying_states=("x",), queued_states=())
    third = LocalConfiguration(tokens=2, staying_states=("x",), queued_states=())
    assert first == second
    assert first != third
