"""Hypothesis property tests for serialisation and coverage identities."""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.coverage import mean_service_gap, service_gaps, worst_service_gap
from repro.experiments.runner import run_experiment
from repro.experiments.serialize import results_from_json, results_to_json
from repro.ring.placement import Placement, random_placement


@st.composite
def agent_sets(draw):
    n = draw(st.integers(4, 40))
    k = draw(st.integers(1, min(n, 8)))
    nodes = draw(
        st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
    )
    return n, nodes


@given(agent_sets())
def test_service_gap_identities(data):
    n, nodes = data
    gaps = service_gaps(n, nodes)
    # Identity 1: agents have gap 0, and those are the only zeros.
    zero_nodes = {index for index, gap in enumerate(gaps) if gap == 0}
    assert zero_nodes == set(nodes)
    # Identity 2: the worst gap is max inter-agent distance minus 1... or
    # equivalently the sum over each segment is a triangular walk; check
    # the mean equals sum(g*(g+1)/2 for segment gaps g)/n.
    ordered = sorted(nodes)
    segment_gaps = [
        (ordered[(index + 1) % len(ordered)] - ordered[index]) % n or n
        for index in range(len(ordered))
    ]
    expected_mean = sum(g * (g - 1) // 2 for g in segment_gaps) / n
    assert abs(mean_service_gap(n, nodes) - expected_mean) < 1e-9
    assert worst_service_gap(n, nodes) == max(g - 1 for g in segment_gaps)


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_serialization_round_trip_random_runs(seed):
    rng = random.Random(seed)
    placement = random_placement(rng.randint(6, 24), rng.randint(2, 5), rng)
    algorithm = rng.choice(["known_k_full", "known_n_full", "unknown"])
    results = [run_experiment(algorithm, placement)]
    assert results_from_json(results_to_json(results)) == results


@given(st.integers(2, 30), st.integers(1, 8))
def test_placement_round_trips_through_distances(n, k):
    k = min(n, k)
    rng = random.Random(n * 1000 + k)
    placement = random_placement(n, k, rng)
    rebuilt = Placement(ring_size=n, homes=placement.homes)
    assert rebuilt == placement
    assert sum(placement.distances) == n
