"""Engine single-step driving and copy-on-branch forking."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.experiments.runner import ALGORITHMS, build_engine
from repro.ring.placement import Placement
from repro.sim.actions import Action
from repro.sim.agent import Agent


def test_step_requires_enabled_agent():
    engine = build_engine("known_k_full", Placement(6, homes=(0, 3)))
    enabled = engine.enabled_agents()
    with pytest.raises(SimulationError):
        engine.step(99)  # unknown agent
    engine.step(enabled[0])
    assert engine.steps == 1


def test_step_sequence_matches_scheduler_run():
    placement = Placement(ring_size=8, homes=(0, 3, 5))
    driven = build_engine("known_k_full", placement)
    reference = build_engine("known_k_full", placement)
    # Driving lowest-id-first by hand equals a recorded scheduler run.
    while not driven.quiescent:
        driven.step(driven.enabled_agents()[0])
    reference.run()
    assert driven.final_positions() == reference.final_positions()


def test_fork_requires_record_views():
    engine = build_engine("known_k_full", Placement(6, homes=(0, 3)))
    with pytest.raises(SimulationError):
        engine.fork()


def test_agent_fork_requires_view_recording():
    agent = Agent()
    with pytest.raises(SimulationError):
        agent.fork()


def test_view_recording_cannot_start_mid_run():
    engine = build_engine("known_k_full", Placement(6, homes=(0, 3)))
    engine.step(engine.enabled_agents()[0])
    with pytest.raises(SimulationError):
        engine.agent(0).begin_view_recording()


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_fork_is_independent_and_equivalent(algorithm):
    placement = Placement(ring_size=8, homes=(0, 3, 5))
    engine = build_engine(algorithm, placement, record_views=True)
    for _ in range(7):
        engine.step(engine.enabled_agents()[0])
    fork = engine.fork()
    assert fork.snapshot() == engine.snapshot()
    assert fork.steps == engine.steps
    assert fork.activation_log == engine.activation_log

    # Divergence: stepping the fork leaves the original untouched.
    before = engine.snapshot()
    fork.step(fork.enabled_agents()[-1])
    assert engine.snapshot() == before
    assert fork.steps == engine.steps + 1

    # Both run to quiescence along the same rule -> same final state.
    while not engine.quiescent:
        engine.step(engine.enabled_agents()[0])
    while not fork.quiescent:
        fork.step(fork.enabled_agents()[0])
    assert sorted(engine.final_positions().values()) == sorted(
        fork.final_positions().values()
    )


def test_fork_of_fork():
    engine = build_engine("unknown", Placement(6, homes=(0, 2)), record_views=True)
    for _ in range(5):
        engine.step(engine.enabled_agents()[0])
    grandchild = engine.fork().fork()
    assert grandchild.snapshot() == engine.snapshot()
    grandchild.step(grandchild.enabled_agents()[0])
    assert grandchild.steps == engine.steps + 1


def test_fork_preserves_halted_and_suspended_flags():
    engine = build_engine("unknown", Placement(5, homes=(0, 2)), record_views=True)
    engine.run()  # relaxed algorithm quiesces all-suspended
    fork = engine.fork()
    for agent_id in engine.agent_ids:
        assert fork.agent(agent_id).suspended == engine.agent(agent_id).suspended
        assert fork.agent(agent_id).halted == engine.agent(agent_id).halted
    assert fork.quiescent


def test_fork_carries_activation_log_for_replay():
    from repro.sim.scheduler import ReplayScheduler

    placement = Placement(ring_size=6, homes=(0, 3))
    engine = build_engine("known_k_full", placement, record_views=True)
    for _ in range(9):
        engine.step(engine.enabled_agents()[-1])
    fork = engine.fork()
    # The fork's log replays on a fresh engine to the identical state.
    replay = build_engine(
        "known_k_full", placement, scheduler=ReplayScheduler(fork.activation_log)
    )
    replay.run_rounds(len(fork.activation_log))
    assert replay.snapshot() == fork.snapshot()


class _CtorArgsAgent(Agent):
    def __init__(self, alpha, beta=2):
        super().__init__()
        self.alpha = alpha
        self.beta = beta
        self.declare("alpha", "beta")

    def protocol(self, first_view):
        yield Action.halt_here()


def test_agent_fork_reconstructs_constructor_arguments():
    agent = _CtorArgsAgent(7, beta=9)
    agent.begin_view_recording()
    clone = agent.fork()
    assert isinstance(clone, _CtorArgsAgent)
    assert (clone.alpha, clone.beta) == (7, 9)
    assert clone.state_fingerprint() == agent.state_fingerprint()
