"""Tests for the content-addressed run store (records + JSONL backend).

The headline contract is the differential guarantee: for any
``ExperimentSpec``, ``RunResult.from_record(store.get(spec.content_hash()))``
equals the freshly computed ``RunResult`` — metrics, final positions and
verification report — across all four algorithms and several scheduler
families.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import RunResult, run_experiment
from repro.experiments.serialize import results_from_json
from repro.spec import ExperimentSpec, PlacementSpec
from repro.store import (
    STORE_SCHEMA_VERSION,
    RunRecord,
    RunStore,
    cached_run,
    env_fingerprint,
)

ALGORITHMS = ("known_k_full", "known_n_full", "known_k_logspace", "unknown")
SCHEDULERS = ("sync", "random", "burst")


def _spec(algorithm="known_k_full", seed=1, scheduler="sync", n=18, k=3):
    return ExperimentSpec(
        algorithm=algorithm,
        placement=PlacementSpec(
            kind="random", ring_size=n, agent_count=k, seed=seed
        ),
        scheduler=scheduler,
        scheduler_seed=seed ^ 0xBEEF,
    )


class TestRunRecord:
    def test_round_trip_with_spec(self):
        spec = _spec()
        result = run_experiment(spec)
        record = result.to_record(spec)
        assert record.content_hash == spec.content_hash()
        rebuilt = RunRecord.from_dict(record.to_dict())
        assert rebuilt == record
        assert RunResult.from_record(rebuilt) == result
        assert rebuilt.experiment_spec() == spec

    def test_round_trip_without_spec(self):
        spec = _spec(seed=4)
        result = run_experiment(spec)
        record = result.to_record()
        assert record.spec is None
        assert record.experiment_spec() is None
        # Specless records still get a stable, distinct content address.
        assert record.content_hash == result.to_record().content_hash
        assert record.content_hash != result.to_record(spec).content_hash
        assert RunResult.from_record(record) == result

    def test_record_is_json_safe(self):
        spec = _spec(seed=5)
        record = run_experiment(spec).to_record(spec)
        text = json.dumps(record.to_dict())
        assert RunRecord.from_dict(json.loads(text)) == record

    def test_env_fingerprint_rides_along(self):
        record = run_experiment(_spec(seed=6)).to_record()
        assert set(env_fingerprint()) == {
            "python", "implementation", "platform", "repro"
        }
        assert record.env["repro"] == env_fingerprint()["repro"]

    def test_mismatched_spec_rejected(self):
        spec = _spec(algorithm="known_k_full", seed=7)
        result = run_experiment(spec)
        other = _spec(algorithm="unknown", seed=7)
        with pytest.raises(ConfigurationError, match="does not match"):
            result.to_record(other)

    def test_future_schema_version_rejected_loudly(self):
        spec = _spec(seed=8)
        data = run_experiment(spec).to_record(spec).to_dict()
        data["schema_version"] = STORE_SCHEMA_VERSION + 3
        with pytest.raises(
            ConfigurationError,
            match=(
                rf"store schema version {STORE_SCHEMA_VERSION + 3}, but this "
                rf"build reads at most {STORE_SCHEMA_VERSION}"
            ),
        ):
            RunRecord.from_dict(data)

    def test_missing_schema_version_rejected(self):
        with pytest.raises(ConfigurationError, match="schema_version"):
            RunRecord.from_dict({"content_hash": "x", "result": {}})

    def test_truncated_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="missing keys"):
            RunRecord(content_hash="x", result={"algorithm": "known_k_full"})


class TestDifferentialGuarantee:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_archived_equals_fresh(self, tmp_path, algorithm, scheduler):
        spec = _spec(algorithm=algorithm, scheduler=scheduler, seed=13)
        fresh = run_experiment(spec)
        store = RunStore(tmp_path / "store")
        store.put(fresh.to_record(spec))
        archived = RunResult.from_record(store.get(spec.content_hash()))
        assert archived == fresh
        assert archived.final_positions == fresh.final_positions
        assert archived.report == fresh.report
        assert archived.row() == fresh.row()


class TestRunStore:
    def test_put_get_contains_len(self, tmp_path):
        store = RunStore(tmp_path / "s")
        spec = _spec(seed=21)
        record = run_experiment(spec).to_record(spec)
        assert store.put(record) is True
        assert store.put(record) is False  # content-addressed: no dup
        assert len(store) == 1
        assert spec.content_hash() in store
        assert store.get(spec.content_hash()) == record
        with pytest.raises(KeyError):
            store.get("0" * 64)

    def test_reopen_rebuilds_index(self, tmp_path):
        root = tmp_path / "s"
        store = RunStore(root)
        records = []
        for seed in range(3):
            spec = _spec(seed=seed)
            record = run_experiment(spec).to_record(spec)
            store.put(record)
            records.append(record)
        reopened = RunStore(root)
        assert len(reopened) == 3
        # Iteration order is sorted content-hash order — stable across
        # shard layouts, not dependent on which pid wrote what when.
        assert list(reopened.iter_records()) == sorted(
            records, key=lambda r: r.content_hash
        )

    def test_refresh_sees_other_writers(self, tmp_path):
        root = tmp_path / "s"
        reader = RunStore(root)
        writer = RunStore(root)
        spec = _spec(seed=31)
        writer.put(run_experiment(spec).to_record(spec))
        assert spec.content_hash() not in reader
        assert reader.refresh() == 1
        assert spec.content_hash() in reader

    def test_put_never_hides_same_shard_appends(self, tmp_path):
        # Two handles in one process share the pid shard: b's put must
        # index a's committed record (not skip its bytes), and both
        # records must stay visible to every handle afterwards.
        root = tmp_path / "s"
        a = RunStore(root)
        b = RunStore(root)
        spec_a, spec_b = _spec(seed=32), _spec(seed=33)
        a.put(run_experiment(spec_a).to_record(spec_a))
        b.put(run_experiment(spec_b).to_record(spec_b))
        assert spec_a.content_hash() in b and spec_b.content_hash() in b
        assert b.refresh() == 0  # nothing was left behind
        assert a.refresh() == 1  # a picks up b's append
        assert len(a) == len(b) == len(RunStore(root)) == 2
        # And a duplicate put through the second handle stays a no-op.
        assert b.put(run_experiment(spec_a).to_record(spec_a)) is False

    def test_query_filters(self, tmp_path):
        store = RunStore(tmp_path / "s")
        for algorithm, seed in (("known_k_full", 1), ("unknown", 2)):
            for scheduler in ("sync", "random"):
                spec = _spec(algorithm=algorithm, scheduler=scheduler, seed=seed)
                store.put(run_experiment(spec).to_record(spec))
        assert len(list(store.query())) == 4
        assert len(list(store.query(algorithm="unknown"))) == 2
        assert len(list(store.query(scheduler="random"))) == 2
        assert len(list(store.query(algorithm="unknown", scheduler="sync"))) == 1
        assert list(store.query(ring_size=18, agent_count=3, uniform=True))
        assert not list(store.query(ring_size=99))
        some_hash = store.hashes()[0]
        matched = list(store.query(hash_prefix=some_hash[:12]))
        assert [record.content_hash for record in matched] == [some_hash]

    def test_replace_points_at_newest(self, tmp_path):
        store = RunStore(tmp_path / "s")
        spec = _spec(seed=41)
        record = run_experiment(spec).to_record(spec)
        store.put(record)
        doctored = RunRecord(
            content_hash=record.content_hash,
            result=dict(record.result, total_moves=-1),
            spec=record.spec,
        )
        assert store.put(doctored, replace=True) is True
        assert store.get(record.content_hash).result["total_moves"] == -1
        assert len(store) == 1
        # The shard stays append-only; the scan is last-wins, so the
        # replacement also survives reopening the store.
        assert RunStore(tmp_path / "s").get(record.content_hash) == doctored

    def test_concurrent_handles_same_process_no_index_corruption(self, tmp_path):
        # Several handles in one process share the pid shard; puts must
        # serialise on the process-wide shard lock so every handle's
        # index offsets point at the right bytes.
        import threading

        root = tmp_path / "s"
        handles = [RunStore(root) for _ in range(4)]
        records = []
        for seed in range(8):
            spec = _spec(seed=100 + seed)
            records.append((spec, run_experiment(spec).to_record(spec)))
        errors = []

        def hammer(handle, batch):
            try:
                for _, record in batch:
                    handle.put(record)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(handle, records[i::4]))
            for i, handle in enumerate(handles)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        fresh = RunStore(root)
        assert len(fresh) == 8
        for spec, record in records:
            assert fresh.get(spec.content_hash()) == record
        for handle in handles:
            handle.refresh()
            for spec, record in records:
                assert handle.get(spec.content_hash()) == record

    def test_replace_survives_reopen_across_shards(self, tmp_path):
        # The replacement may land in a *different* shard than the
        # original (another process replaced it).  Scan order is
        # lexicographic by shard name, so force the stale original to
        # be scanned last: the write stamp, not scan order, must win.
        root = tmp_path / "s"
        store = RunStore(root)
        spec = _spec(seed=43)
        record = run_experiment(spec).to_record(spec)
        store.put(record)
        original_shard = next(root.glob("shard-*.jsonl"))
        original_shard.rename(root / "shard-zzz.jsonl")  # sorts last
        doctored = RunRecord(
            content_hash=record.content_hash,
            result=dict(record.result, total_moves=-7),
            spec=record.spec,
        )
        RunStore(root).put(doctored, replace=True)  # fresh pid shard
        reopened = RunStore(root)
        assert len(reopened) == 1
        assert reopened.get(record.content_hash) == doctored

    def test_replace_wins_even_when_the_clock_steps_backwards(
        self, tmp_path, monkeypatch
    ):
        from repro.store import jsonl

        root = tmp_path / "s"
        store = RunStore(root)
        spec = _spec(seed=44)
        record = run_experiment(spec).to_record(spec)
        store.put(record)
        original_stamp = store._index.winner(record.content_hash, None).stamp
        # NTP stepped the clock back: naive stamping would rank the
        # replacement below the record it replaces.
        monkeypatch.setattr(jsonl.time, "time_ns", lambda: original_stamp - 10)
        doctored = RunRecord(
            content_hash=record.content_hash,
            result=dict(record.result, total_moves=-3),
            spec=record.spec,
        )
        assert store.put(doctored, replace=True) is True
        assert store.get(record.content_hash) == doctored
        assert RunStore(root).get(record.content_hash) == doctored

    def test_get_many_preserves_order_and_raises_on_absent(self, tmp_path):
        store = RunStore(tmp_path / "s")
        specs = [_spec(seed=80 + i) for i in range(4)]
        records = []
        for spec in specs:
            record = run_experiment(spec).to_record(spec)
            store.put(record)
            records.append(record)
        hashes = [spec.content_hash() for spec in specs]
        assert store.get_many(list(reversed(hashes))) == list(reversed(records))
        with pytest.raises(KeyError):
            store.get_many(hashes + ["0" * 64])

    def test_zero_schema_version_rejected(self):
        with pytest.raises(ConfigurationError, match="impossible schema version 0"):
            RunRecord.from_dict(
                {"schema_version": 0, "content_hash": "x", "result": {}}
            )

    def test_torn_tail_is_skipped_and_recovered(self, tmp_path):
        root = tmp_path / "s"
        store = RunStore(root)
        spec = _spec(seed=51)
        store.put(run_experiment(spec).to_record(spec))
        shard = next(root.glob("shard-*.jsonl"))
        with shard.open("ab") as handle:
            handle.write(b'{"content_hash": "torn')  # killed mid-append
        reopened = RunStore(root)
        assert len(reopened) == 1  # committed record survives
        assert spec.content_hash() in reopened
        # A new writer appending to the same shard must not merge its
        # record into the torn tail.
        other = _spec(seed=52)
        reopened.put(run_experiment(other).to_record(other))
        assert len(RunStore(root)) == 2

    def test_missing_store_without_create(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            RunStore(tmp_path / "absent", create=False)


class TestCachedRun:
    def test_miss_then_hit(self, tmp_path):
        store = RunStore(tmp_path / "s")
        spec = _spec(seed=61, scheduler="random")
        first, hit1 = cached_run(spec, store)
        second, hit2 = cached_run(spec, store)
        assert (hit1, hit2) == (False, True)
        assert first == second == run_experiment(spec)
        assert len(store) == 1

    def test_no_store_is_plain_run(self):
        spec = _spec(seed=62)
        result, hit = cached_run(spec, None)
        assert hit is False
        assert result == run_experiment(spec)


class TestSerializeVersionGate:
    """serialize.py is a thin versioned wrapper over the record schema."""

    def test_future_format_version_message_is_pinned(self):
        with pytest.raises(
            ConfigurationError,
            match=(
                r"results file uses format version 99, but this build "
                r"reads at most 1; upgrade repro to read it"
            ),
        ):
            results_from_json('{"format_version": 99, "results": []}')

    def test_missing_format_version_message_is_pinned(self):
        with pytest.raises(
            ConfigurationError,
            match=r"not a results file: format_version is None",
        ):
            results_from_json('{"results": []}')

    def test_non_integer_version_rejected(self):
        with pytest.raises(ConfigurationError, match="not a results file"):
            results_from_json('{"format_version": "2"}')
        with pytest.raises(ConfigurationError, match="not a results file"):
            results_from_json('[1, 2, 3]')

    def test_missing_results_list_rejected(self):
        with pytest.raises(ConfigurationError, match="no 'results' list"):
            results_from_json('{"format_version": 1}')
        with pytest.raises(ConfigurationError, match="no 'results' list"):
            results_from_json('{"format_version": 1, "results": 7}')

    def test_serialize_payload_is_the_record_payload(self):
        spec = _spec(seed=71)
        result = run_experiment(spec)
        from repro.experiments.serialize import result_to_dict

        assert result_to_dict(result) == result.to_record(spec).result
