"""Socketless tests for the experiment service's API layer.

:class:`repro.serve.api.ServeApi` maps ``(method, path, query, body)``
to ``(status, payload)`` with no HTTP anywhere, so every route — happy
path, 404/400/405, ambiguous prefixes, malformed bodies — is pinned
here without binding a port.  The HTTP shell gets its own (smaller)
suite in ``test_serve_http.py``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.sweep import SweepSpec
from repro.serve import JobManager, ServeApi
from repro.spec import ExperimentSpec, PlacementSpec
from repro.store import RunStore


def _spec(algorithm="known_k_full", seed=1, scheduler="sync", n=18, k=3):
    return ExperimentSpec(
        algorithm=algorithm,
        placement=PlacementSpec(
            kind="random", ring_size=n, agent_count=k, seed=seed
        ),
        scheduler=scheduler,
        scheduler_seed=seed ^ 0xBEEF,
    )


def _sweep() -> SweepSpec:
    return SweepSpec(
        algorithms=("known_k_full",),
        grid=((12, 3),),
        schedulers=("sync",),
        trials=2,
        base_seed=0,
    )


@pytest.fixture()
def api(tmp_path):
    store = RunStore(tmp_path / "store")
    jobs = JobManager(str(tmp_path / "store"), workers=1)
    try:
        yield ServeApi(store, jobs)
    finally:
        jobs.shutdown(timeout=2.0)


def _wait_for(api, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, job = api.handle("GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if job["state"] in ("completed", "failed"):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish: {job}")


def _submit(api, kind, spec, options=None):
    body = json.dumps(
        {"kind": kind, "spec": spec, "options": options or {}}
    ).encode()
    return api.handle("POST", "/v1/jobs", body=body)


class TestReadEndpoints:
    def test_health(self, api):
        status, payload = api.handle("GET", "/v1/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["records"] == 0
        assert payload["jobs"] == {}

    def test_registry_dump(self, api):
        status, payload = api.handle("GET", "/v1/registry")
        assert status == 200
        names = [entry["name"] for entry in payload["algorithms"]]
        assert "known_k_full" in names
        assert payload["schedulers"]

    def test_digest_matches_store(self, api):
        spec = _spec(seed=2)
        api.store.put(run_experiment(spec).to_record(spec))
        status, payload = api.handle("GET", "/v1/store/digest")
        assert status == 200
        assert payload == {"digest": api.store.digest(), "records": 1}

    def test_runs_query_filters_and_pagination(self, api):
        for seed, algorithm in enumerate(
            ("known_k_full", "known_k_full", "unknown")
        ):
            spec = _spec(algorithm=algorithm, seed=seed)
            api.store.put(run_experiment(spec).to_record(spec))
        status, payload = api.handle(
            "GET", "/v1/runs", {"algorithm": "known_k_full"}
        )
        assert status == 200
        assert payload["total"] == 2
        assert len(payload["runs"]) == 2
        status, page = api.handle("GET", "/v1/runs", {"limit": "1"})
        assert status == 200
        assert page["total"] == 3 and len(page["runs"]) == 1
        status, rest = api.handle(
            "GET", "/v1/runs", {"limit": "5", "offset": "1"}
        )
        assert len(rest["runs"]) == 2
        # Pages tile the hash-ordered listing without gaps or repeats.
        assert (
            [r["content_hash"] for r in page["runs"]]
            + [r["content_hash"] for r in rest["runs"]]
            == api.store.hashes()
        )

    def test_runs_rejects_bad_parameters(self, api):
        for query in (
            {"n": "twelve"},
            {"uniform": "maybe"},
            {"limit": "0"},
            {"offset": "-1"},
            {"sched": "sync"},
        ):
            status, payload = api.handle("GET", "/v1/runs", query)
            assert status == 400
            assert payload["error"]["code"] == "bad_request"

    def test_single_run_prefix_resolution(self, api):
        spec = _spec(seed=5)
        record = run_experiment(spec).to_record(spec)
        api.store.put(record)
        status, payload = api.handle(
            "GET", f"/v1/runs/{record.content_hash[:10]}"
        )
        assert status == 200
        assert payload["content_hash"] == record.content_hash
        status, payload = api.handle("GET", "/v1/runs/ffff")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_ambiguous_prefix_is_a_structured_400(self, api):
        for seed in range(40):  # pigeonhole: some 1-hex prefix repeats
            spec = _spec(seed=seed)
            api.store.put(run_experiment(spec).to_record(spec))
        firsts = [h[0] for h in api.store.hashes()]
        prefix = next(c for c in firsts if firsts.count(c) > 1)
        status, payload = api.handle("GET", f"/v1/runs/{prefix}")
        assert status == 400
        assert payload["error"]["code"] == "ambiguous_hash"
        assert payload["error"]["matches"]

    def test_failures_listing_and_fetch(self, api):
        api.store.failures.put("a" * 64, {"content_hash": "a" * 64, "kind": "x"})
        status, payload = api.handle("GET", "/v1/failures")
        assert status == 200
        assert payload == {"total": 1, "failures": ["a" * 64]}
        status, payload = api.handle("GET", "/v1/failures/aaaa")
        assert status == 200
        assert payload["kind"] == "x"
        status, payload = api.handle("GET", "/v1/failures/bbbb")
        assert status == 404

    def test_quarantine_listing(self, api):
        status, payload = api.handle("GET", "/v1/quarantine")
        assert status == 200
        assert payload == {"total": 0, "quarantine": []}

    def test_unknown_path_and_method(self, api):
        status, payload = api.handle("GET", "/v2/runs")
        assert status == 404
        status, payload = api.handle("DELETE", "/v1/runs")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        status, payload = api.handle("PUT", "/v1/jobs")
        assert status == 405


class TestJobEndpoints:
    def test_submit_sweep_runs_to_completion(self, api):
        status, job = _submit(api, "sweep", _sweep().to_dict())
        assert status == 202
        assert job["state"] in ("queued", "running")
        assert job["kind"] == "sweep"
        finished = _wait_for(api, job["id"])
        assert finished["state"] == "completed"
        assert finished["result"]["executed"] == 2
        assert finished["progress"]["total"] == 2
        # The sweep's records are in the store, visible over /v1/runs.
        status, listing = api.handle("GET", "/v1/runs")
        assert listing["total"] == 2

    def test_submit_experiment_caches_second_time(self, api):
        spec = _spec(seed=11)
        status, first = _submit(api, "experiment", spec.to_dict())
        assert status == 202
        assert _wait_for(api, first["id"])["result"]["cached"] is False
        status, second = _submit(api, "experiment", spec.to_dict())
        done = _wait_for(api, second["id"])
        assert done["result"]["cached"] is True
        assert done["result"]["content_hash"] == spec.content_hash()

    def test_jobs_listing_is_oldest_first(self, api):
        spec = _spec(seed=12)
        _submit(api, "experiment", spec.to_dict())
        _submit(api, "experiment", spec.to_dict())
        status, listing = api.handle("GET", "/v1/jobs")
        assert status == 200
        assert listing["total"] == 2
        ids = [job["id"] for job in listing["jobs"]]
        assert ids == sorted(ids)

    def test_unknown_job_is_404(self, api):
        status, payload = api.handle("GET", "/v1/jobs/job-9999-nope")
        assert status == 404

    def test_malformed_submissions_are_structured_400s(self, api):
        cases = [
            (None, "requires a JSON body"),
            (b"{not json", "not valid JSON"),
            (b'"just a string"', "must be a JSON object"),
            (b'{"kind": "sweep"}', "string 'kind' and an object 'spec'"),
            (b'{"kind": "teleport", "spec": {}}', "unknown job kind"),
            (
                json.dumps(
                    {"kind": "sweep", "spec": {"bogus": True}}
                ).encode(),
                "invalid sweep spec",
            ),
            (
                json.dumps(
                    {"kind": "sweep", "spec": {}, "options": 7}
                ).encode(),
                "'options' must be a JSON object",
            ),
        ]
        for body, needle in cases:
            status, payload = api.handle("POST", "/v1/jobs", body=body)
            assert status == 400, (body, payload)
            assert needle in payload["error"]["message"], (body, payload)

    def test_failed_job_reports_its_error(self, api):
        # A structurally valid sweep whose algorithm does not exist
        # passes spec parsing but fails at execution time.
        spec = _sweep().to_dict()
        spec["algorithms"] = ["no_such_algorithm"]
        status, job = _submit(api, "sweep", spec)
        if status == 400:  # spec layer may reject it upfront — also fine
            assert "no_such_algorithm" in job["error"]["message"]
            return
        finished = _wait_for(api, job["id"])
        assert finished["state"] == "failed"
        assert "no_such_algorithm" in finished["error"]
