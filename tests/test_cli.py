"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import _parse_scheduler_list, build_parser, main


class TestParsing:
    def test_grid_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "--grid", "64x8,128x16"])
        assert args.grid == [(64, 8), (128, 16)]

    def test_bad_grid_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "--grid", "64-8"])

    def test_int_list_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["symmetry", "--degrees", "1,2,4"])
        assert args.degrees == [1, 2, 4]

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scheduler_list_legacy_commas(self):
        assert _parse_scheduler_list("sync,random,chaos") == [
            "sync",
            "random",
            "chaos",
        ]

    def test_scheduler_list_spec_strings_split_on_semicolons(self):
        assert _parse_scheduler_list("sync;laggard:victims=0,patience=5") == [
            "sync",
            "laggard:victims=0,patience=5",
        ]
        assert _parse_scheduler_list("laggard:victim=1,patience=3") == [
            "laggard:victim=1,patience=3"
        ]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "known_k_full" in output
        assert "unknown" in output

    def test_run_random_placement(self, capsys):
        assert main(["run", "--algorithm", "known_k_full", "--n", "24", "--k", "4"]) == 0
        assert "True" in capsys.readouterr().out

    def test_run_explicit_distances(self, capsys):
        code = main(["run", "--distances", "5,7,4,8", "--render"])
        output = capsys.readouterr().out
        assert code == 0
        assert "gaps: 6 x4" in output

    def test_run_with_adversarial_scheduler(self, capsys):
        code = main(
            [
                "run",
                "--algorithm",
                "known_k_logspace",
                "--n",
                "20",
                "--k",
                "4",
                "--scheduler",
                "laggard",
            ]
        )
        assert code == 0

    def test_run_with_parameterised_scheduler_spec(self, capsys):
        code = main(
            [
                "run",
                "--n", "20", "--k", "4",
                "--scheduler", "laggard:victim=1,patience=5,seed=2",
            ]
        )
        assert code == 0
        assert "True" in capsys.readouterr().out

    def test_run_bad_scheduler_spec_is_an_error(self, capsys):
        code = main(["run", "--scheduler", "laggard:wat=1"])
        assert code == 2
        assert "no parameter" in capsys.readouterr().err

    def test_sweep_prints_slopes(self, capsys):
        code = main(["sweep", "--grid", "24x4,48x4", "--trials", "1"])
        output = capsys.readouterr().out
        assert code == 0
        assert "log-log slope" in output

    def test_symmetry(self, capsys):
        code = main(["symmetry", "--n", "48", "--k", "8", "--degrees", "1,2"])
        output = capsys.readouterr().out
        assert code == 0
        assert "Theorem 6" in output

    def test_impossibility(self, capsys):
        code = main(["impossibility", "--distances", "5,7,4,8"])
        output = capsys.readouterr().out
        assert code == 0  # construction must fail uniformity => exit 0
        assert "False" in output

    def test_lower_bound(self, capsys):
        code = main(["lower-bound", "--sizes", "40x8"])
        output = capsys.readouterr().out
        assert code == 0
        assert "optimal" in output

    def test_error_path_returns_2(self, capsys):
        # k > n is a ConfigurationError -> exit code 2, message on stderr.
        code = main(["run", "--n", "4", "--k", "9"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestListCommand:
    def test_list_shows_schedulers_and_bounds(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "O(k log n)" in output
        assert "laggard" in output
        assert "wake_race" not in output  # self-test agents stay hidden

    def test_list_json_dumps_both_registries(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in payload["algorithms"]}
        assert {"known_k_full", "unknown", "wake_race"} <= names
        laggard = next(
            entry for entry in payload["schedulers"] if entry["name"] == "laggard"
        )
        assert [param["name"] for param in laggard["params"]] == [
            "victims",
            "patience",
            "seed",
        ]


class TestSpecCommand:
    RUN_FLAGS = [
        "--algorithm", "unknown",
        "--n", "24", "--k", "4", "--seed", "3",
        "--scheduler", "laggard:victim=1,patience=7",
        "--scheduler-seed", "9",
    ]

    def test_spec_emits_canonical_json(self, capsys):
        assert main(["spec", *self.RUN_FLAGS]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "unknown"
        assert payload["scheduler"] == {
            "spec": "laggard:victims=1,patience=7",
            "seed": 9,
        }
        assert payload["placement"] == {
            "kind": "random", "ring_size": 24, "agent_count": 4, "seed": 3,
        }

    def test_spec_file_drives_run_identically(self, capsys, tmp_path):
        path = tmp_path / "experiment.json"
        assert main(["spec", *self.RUN_FLAGS, "--output", str(path)]) == 0
        capsys.readouterr()
        assert main(["run", "--spec", str(path)]) == 0
        via_spec = capsys.readouterr().out
        assert main(["run", *self.RUN_FLAGS]) == 0
        via_flags = capsys.readouterr().out
        assert via_spec == via_flags

    def test_spec_round_trips_through_experiment_spec(self, capsys):
        from repro.spec import ExperimentSpec

        assert main(["spec", *self.RUN_FLAGS]) == 0
        text = capsys.readouterr().out
        spec = ExperimentSpec.from_json(text)
        assert ExperimentSpec.from_json(spec.to_json()) == spec


class TestMcCommand:
    def test_mc_exhausts_small_instance(self, capsys):
        code = main(["mc", "--algorithm", "known_k_full", "--n", "6", "--k", "2"])
        output = capsys.readouterr().out
        assert code == 0
        assert "no violations" in output
        assert "deduped" in output
        assert "all 3 rotation-distinct placements" in output

    def test_mc_json_document(self, capsys):
        import json

        code = main(
            ["mc", "--algorithm", "known_k_full", "--n", "6", "--k", "2", "--json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert document["ok"] is True
        assert document["por"] is True
        assert document["totals"]["placements"] == 3
        assert len(document["results"]) == 3
        assert all(cell["verdict"] == "ok" for cell in document["results"])

    def test_mc_no_por_doubles_transitions_only(self, capsys):
        import json

        main(["mc", "--n", "6", "--k", "2", "--json"])
        reduced = json.loads(capsys.readouterr().out)
        main(["mc", "--n", "6", "--k", "2", "--json", "--no-por"])
        full = json.loads(capsys.readouterr().out)
        assert full["totals"]["states"] == reduced["totals"]["states"]
        assert full["totals"]["transitions"] > reduced["totals"]["transitions"]
        assert full["totals"]["por_skipped"] == 0

    def test_mc_jobs_matches_serial(self, capsys):
        import json

        main(["mc", "--n", "6", "--k", "2", "--json"])
        serial = json.loads(capsys.readouterr().out)
        code = main(["mc", "--n", "6", "--k", "2", "--json", "--jobs", "2"])
        parallel = json.loads(capsys.readouterr().out)
        assert code == 0
        serial.pop("jobs"), parallel.pop("jobs")
        assert parallel == serial

    def test_mc_rejects_bad_jobs_and_bare_resume(self, capsys):
        assert main(["mc", "--n", "6", "--k", "2", "--jobs", "0"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["mc", "--n", "6", "--k", "2", "--resume"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_mc_explicit_distances(self, capsys):
        code = main(["mc", "--algorithm", "unknown", "--distances", "2,4"])
        output = capsys.readouterr().out
        assert code == 0
        assert "1 explicit configuration" in output

    def test_mc_truncated_search_fails(self, capsys):
        code = main(["mc", "--n", "6", "--k", "2", "--max-states", "5"])
        output = capsys.readouterr().out
        assert code == 1
        assert "truncated" in output

    def test_mc_rejects_k_larger_than_n(self, capsys):
        code = main(["mc", "--n", "4", "--k", "6"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_mc_from_spec_file(self, capsys, tmp_path):
        from repro.spec import ExperimentSpec, PlacementSpec

        path = tmp_path / "mc.json"
        spec = ExperimentSpec(
            algorithm="unknown",
            placement=PlacementSpec(kind="distances", distances=(2, 4)),
        )
        path.write_text(spec.to_json(), encoding="utf-8")
        code = main(["mc", "--spec", str(path)])
        output = capsys.readouterr().out
        assert code == 0
        assert "1 configuration from spec" in output
        assert "no violations" in output

    def test_mc_selftest_algorithm_is_reachable(self, capsys):
        # wake_race registers with selftest=True: hidden from `run`
        # choices but addressable by the checker, which finds its bug.
        code = main(["mc", "--algorithm", "wake_race", "--distances", "1,2,5"])
        output = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION" in output
        assert "wake_race" in output


class TestTimelineCommand:
    def test_timeline_renders(self, capsys):
        code = main(
            ["timeline", "--distances", "1,2,4,5", "--sample-every", "4", "--limit", "8"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "t=   0 |" in output
        assert "legend" in output

    def test_timeline_random_placement(self, capsys):
        code = main(["timeline", "--n", "12", "--k", "3", "--limit", "5"])
        assert code == 0
        assert "configuration" in capsys.readouterr().out


class TestErrorPaths:
    """Every bad input must exit non-zero with a one-line diagnostic."""

    @staticmethod
    def _assert_one_line_error(capsys, code):
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_run_malformed_spec_json(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{definitely not json")
        code = main(["run", "--spec", str(bad)])
        self._assert_one_line_error(capsys, code)

    def test_run_spec_wrong_shape(self, capsys, tmp_path):
        bad = tmp_path / "shape.json"
        bad.write_text('{"algorithm": "known_k_full", "placement": {"kind": "x"}}')
        code = main(["run", "--spec", str(bad)])
        self._assert_one_line_error(capsys, code)

    def test_run_missing_spec_file(self, capsys):
        code = main(["run", "--spec", "/no/such/spec.json"])
        self._assert_one_line_error(capsys, code)

    def test_unknown_scheduler_spec_name(self, capsys):
        code = main(["run", "--n", "8", "--k", "2", "--scheduler", "warpdrive"])
        self._assert_one_line_error(capsys, code)
        code = main(["run", "--scheduler", "laggard:victims=1--2"])
        self._assert_one_line_error(capsys, code)

    def test_psweep_scheduler_spec_errors(self, capsys):
        code = main(["psweep", "--grid", "8x2", "--schedulers", "warpdrive"])
        self._assert_one_line_error(capsys, code)

    def test_psweep_resume_without_store_conflicts(self, capsys):
        code = main(["psweep", "--grid", "8x2", "--resume"])
        self._assert_one_line_error(capsys, code)

    def test_psweep_no_resume_without_store_conflicts(self, capsys):
        code = main(["psweep", "--grid", "8x2", "--no-resume"])
        self._assert_one_line_error(capsys, code)

    def test_psweep_resume_with_store_is_fine(self, capsys, tmp_path):
        code = main(
            ["psweep", "--grid", "8x2", "--trials", "1", "--jobs", "1",
             "--store", str(tmp_path / "store"), "--resume"]
        )
        assert code == 0
        assert "cached" in capsys.readouterr().out


class TestQueryHashPrefix:
    def test_ambiguous_prefix_lists_all_matches_with_a_message(
        self, capsys, tmp_path
    ):
        from repro.experiments.runner import run_experiment
        from repro.spec import ExperimentSpec, PlacementSpec
        from repro.store import RunRecord, RunStore

        store = RunStore(tmp_path / "store")
        spec = ExperimentSpec(
            algorithm="known_k_full",
            placement=PlacementSpec(kind="random", ring_size=8, agent_count=2, seed=0),
        )
        payload = run_experiment(spec).to_record(spec).to_dict()
        for content_hash in ("aa" * 32, "ab" * 32, "cd" * 32):
            record = dict(payload, content_hash=content_hash)
            store.put(RunRecord.from_dict(record))

        code = main(["query", "--store", str(store.root), "--hash", "a"])
        output = capsys.readouterr().out
        assert code == 0
        assert "hash prefix 'a' is ambiguous: 2 archived runs match" in output
        assert "listing all of them" in output
        assert "2 of 3 archived runs matched" in output

    def test_ambiguity_note_goes_to_stderr_in_json_mode(self, capsys, tmp_path):
        import json as json_module

        from repro.experiments.runner import run_experiment
        from repro.spec import ExperimentSpec, PlacementSpec
        from repro.store import RunRecord, RunStore

        store = RunStore(tmp_path / "store")
        spec = ExperimentSpec(
            algorithm="known_k_full",
            placement=PlacementSpec(kind="random", ring_size=8, agent_count=2, seed=0),
        )
        payload = run_experiment(spec).to_record(spec).to_dict()
        for content_hash in ("aa" * 32, "ab" * 32):
            store.put(RunRecord.from_dict(dict(payload, content_hash=content_hash)))

        code = main(
            ["query", "--store", str(store.root), "--hash", "a", "--json"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "ambiguous" in captured.err
        records = json_module.loads(captured.out)  # stdout stays pure JSON
        assert len(records) == 2

    def test_unique_prefix_prints_no_ambiguity_note(self, capsys, tmp_path):
        from repro.experiments.runner import run_experiment
        from repro.spec import ExperimentSpec, PlacementSpec
        from repro.store import RunRecord, RunStore

        store = RunStore(tmp_path / "store")
        spec = ExperimentSpec(
            algorithm="known_k_full",
            placement=PlacementSpec(kind="random", ring_size=8, agent_count=2, seed=0),
        )
        payload = run_experiment(spec).to_record(spec).to_dict()
        for content_hash in ("aa" * 32, "cd" * 32):
            store.put(RunRecord.from_dict(dict(payload, content_hash=content_hash)))
        code = main(["query", "--store", str(store.root), "--hash", "cd"])
        output = capsys.readouterr().out
        assert code == 0
        assert "ambiguous" not in output
        assert "1 of 2 archived runs matched" in output

    def test_filters_that_disambiguate_suppress_the_note(self, capsys, tmp_path):
        import copy

        from repro.experiments.runner import run_experiment
        from repro.spec import ExperimentSpec, PlacementSpec
        from repro.store import RunRecord, RunStore

        store = RunStore(tmp_path / "store")
        spec = ExperimentSpec(
            algorithm="known_k_full",
            placement=PlacementSpec(kind="random", ring_size=8, agent_count=2, seed=0),
        )
        payload = run_experiment(spec).to_record(spec).to_dict()
        for content_hash, algorithm in (
            ("aa" * 32, "known_k_full"),
            ("ab" * 32, "unknown"),
        ):
            record = copy.deepcopy(payload)
            record["content_hash"] = content_hash
            record["result"]["algorithm"] = algorithm
            store.put(RunRecord.from_dict(record))
        assert store.resolve_prefix("a") == ["aa" * 32, "ab" * 32]
        # The prefix alone matches two records, but the algorithm filter
        # narrows the listing to one — the ambiguity note must agree
        # with what is actually listed, so it stays silent.
        code = main(
            ["query", "--store", str(store.root), "--hash", "a",
             "--algorithm", "known_k_full"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "ambiguous" not in output
        assert "1 of 2 archived runs matched" in output


class TestQueryPagination:
    @staticmethod
    def _seed_store(tmp_path, count=5):
        from repro.experiments.runner import run_experiment
        from repro.spec import ExperimentSpec, PlacementSpec
        from repro.store import RunRecord, RunStore

        store = RunStore(tmp_path / "store")
        spec = ExperimentSpec(
            algorithm="known_k_full",
            placement=PlacementSpec(
                kind="random", ring_size=8, agent_count=2, seed=0
            ),
        )
        payload = run_experiment(spec).to_record(spec).to_dict()
        for index in range(count):  # hashes 0000…, 1000…, … (< 10 of them)
            record = dict(
                payload, content_hash=f"{index:x}".ljust(64, "0")
            )
            store.put(RunRecord.from_dict(record))
        return store

    def test_limit_and_offset_page_in_hash_order(self, capsys, tmp_path):
        store = self._seed_store(tmp_path)
        code = main(
            ["query", "--store", str(store.root), "--limit", "2",
             "--offset", "2"]
        )
        output = capsys.readouterr().out
        assert code == 0
        # Hashes 2 and 3 of five, in content-hash order.
        assert "2".ljust(16, "0") in output and "3".ljust(16, "0") in output
        assert "1".ljust(16, "0") not in output
        assert "4".ljust(16, "0") not in output
        assert "page: 2 of 5 matched runs (offset 2, 5 archived)" in output

    def test_pages_tile_the_json_listing(self, capsys, tmp_path):
        import json as json_module

        store = self._seed_store(tmp_path)
        seen = []
        for offset in (0, 2, 4):
            assert main(
                ["query", "--store", str(store.root), "--limit", "2",
                 "--offset", str(offset), "--json"]
            ) == 0
            seen += [
                record["content_hash"]
                for record in json_module.loads(capsys.readouterr().out)
            ]
        assert seen == store.hashes()  # no gaps, no repeats

    def test_bad_pagination_arguments_are_errors(self, capsys, tmp_path):
        store = self._seed_store(tmp_path, count=1)
        for flags in (["--limit", "0"], ["--offset", "-1"]):
            code = main(["query", "--store", str(store.root), *flags])
            captured = capsys.readouterr()
            assert code != 0
            assert "must be >=" in captured.err

    def test_unpaginated_output_keeps_the_legacy_tail(self, capsys, tmp_path):
        store = self._seed_store(tmp_path, count=3)
        assert main(["query", "--store", str(store.root)]) == 0
        output = capsys.readouterr().out
        assert "3 of 3 archived runs matched" in output
        assert "page:" not in output

    def test_failures_listing(self, capsys, tmp_path):
        import json as json_module

        store = self._seed_store(tmp_path, count=1)
        store.failures.put(
            "ee" * 32, {"content_hash": "ee" * 32, "kind": "assertion"}
        )
        assert main(
            ["query", "--store", str(store.root), "--failures"]
        ) == 0
        output = capsys.readouterr().out
        assert "ee" * 8 in output
        assert "assertion" in output
        assert main(
            ["query", "--store", str(store.root), "--failures", "--json"]
        ) == 0
        listing = json_module.loads(capsys.readouterr().out)
        assert [item["content_hash"] for item in listing] == ["ee" * 32]

    def test_empty_quarantine_listing(self, capsys, tmp_path):
        store = self._seed_store(tmp_path, count=1)
        assert main(
            ["query", "--store", str(store.root), "--quarantine"]
        ) == 0
        assert "0" in capsys.readouterr().out
