"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_grid_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "--grid", "64x8,128x16"])
        assert args.grid == [(64, 8), (128, 16)]

    def test_bad_grid_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "--grid", "64-8"])

    def test_int_list_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["symmetry", "--degrees", "1,2,4"])
        assert args.degrees == [1, 2, 4]

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "known_k_full" in output
        assert "unknown" in output

    def test_run_random_placement(self, capsys):
        assert main(["run", "--algorithm", "known_k_full", "--n", "24", "--k", "4"]) == 0
        assert "True" in capsys.readouterr().out

    def test_run_explicit_distances(self, capsys):
        code = main(["run", "--distances", "5,7,4,8", "--render"])
        output = capsys.readouterr().out
        assert code == 0
        assert "gaps: 6 x4" in output

    def test_run_with_adversarial_scheduler(self, capsys):
        code = main(
            [
                "run",
                "--algorithm",
                "known_k_logspace",
                "--n",
                "20",
                "--k",
                "4",
                "--scheduler",
                "laggard",
            ]
        )
        assert code == 0

    def test_sweep_prints_slopes(self, capsys):
        code = main(["sweep", "--grid", "24x4,48x4", "--trials", "1"])
        output = capsys.readouterr().out
        assert code == 0
        assert "log-log slope" in output

    def test_symmetry(self, capsys):
        code = main(["symmetry", "--n", "48", "--k", "8", "--degrees", "1,2"])
        output = capsys.readouterr().out
        assert code == 0
        assert "Theorem 6" in output

    def test_impossibility(self, capsys):
        code = main(["impossibility", "--distances", "5,7,4,8"])
        output = capsys.readouterr().out
        assert code == 0  # construction must fail uniformity => exit 0
        assert "False" in output

    def test_lower_bound(self, capsys):
        code = main(["lower-bound", "--sizes", "40x8"])
        output = capsys.readouterr().out
        assert code == 0
        assert "optimal" in output

    def test_error_path_returns_2(self, capsys):
        # k > n is a ConfigurationError -> exit code 2, message on stderr.
        code = main(["run", "--n", "4", "--k", "9"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestMcCommand:
    def test_mc_exhausts_small_instance(self, capsys):
        code = main(["mc", "--algorithm", "known_k_full", "--n", "6", "--k", "2"])
        output = capsys.readouterr().out
        assert code == 0
        assert "no violations" in output
        assert "deduped" in output
        assert "all 5 placements" in output

    def test_mc_explicit_distances(self, capsys):
        code = main(["mc", "--algorithm", "unknown", "--distances", "2,4"])
        output = capsys.readouterr().out
        assert code == 0
        assert "1 explicit configuration" in output

    def test_mc_truncated_search_fails(self, capsys):
        code = main(["mc", "--n", "6", "--k", "2", "--max-states", "5"])
        output = capsys.readouterr().out
        assert code == 1
        assert "truncated" in output

    def test_mc_rejects_k_larger_than_n(self, capsys):
        code = main(["mc", "--n", "4", "--k", "6"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestTimelineCommand:
    def test_timeline_renders(self, capsys):
        code = main(
            ["timeline", "--distances", "1,2,4,5", "--sample-every", "4", "--limit", "8"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "t=   0 |" in output
        assert "legend" in output

    def test_timeline_random_placement(self, capsys):
        code = main(["timeline", "--n", "12", "--k", "3", "--limit", "5"])
        assert code == 0
        assert "configuration" in capsys.readouterr().out
