"""Tests for Algorithm 1 (knowledge of k, O(k log n) memory) — E1, E9."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.core.known_k_full import KnownKFullAgent
from repro.experiments.runner import run_experiment
from repro.ring.placement import (
    Placement,
    equidistant_placement,
    periodic_placement,
    placement_from_distances,
    quarter_packed_placement,
    random_placement,
)
from repro.sim.scheduler import BurstScheduler, LaggardScheduler, RandomScheduler

ALGO = "known_k_full"


class TestCorrectness:
    @pytest.mark.parametrize(
        "distances",
        [
            (5, 7, 4, 8),  # aperiodic, n = 24, k = 4
            (1, 4, 2, 1, 2, 2),  # Figure 1(a)
            (1, 2, 3, 1, 2, 3),  # Figure 1(b), periodic l = 2
            (3, 3, 3),  # already uniform, n = 9
            (1, 1, 1, 9),  # quarter-ish packing
        ],
    )
    def test_exact_configurations(self, distances):
        result = run_experiment(ALGO, placement_from_distances(distances))
        assert result.ok, result.report.describe()

    @pytest.mark.parametrize("n,k", [(12, 4), (13, 4), (17, 5), (30, 6), (9, 9), (7, 2)])
    def test_random_placements(self, n, k, rng):
        for _ in range(3):
            result = run_experiment(ALGO, random_placement(n, k, rng))
            assert result.ok, result.report.describe()

    def test_single_agent(self):
        # k = 1 is degenerate but legal: the agent halts at its home.
        result = run_experiment(ALGO, Placement(ring_size=7, homes=(3,)))
        assert result.ok
        assert result.final_positions == (3,)

    def test_already_uniform_stays_uniform(self):
        placement = equidistant_placement(20, 5)
        result = run_experiment(ALGO, placement)
        assert result.ok
        # Symmetry degree k: every agent is its own base; nobody moves
        # past its home after the selection circuit.
        assert result.final_positions == placement.homes

    def test_quarter_packed(self):
        result = run_experiment(ALGO, quarter_packed_placement(32, 8))
        assert result.ok

    def test_periodic_ring_multiple_bases(self):
        result = run_experiment(ALGO, periodic_placement((2, 5, 3), 2))
        assert result.ok

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            KnownKFullAgent(0)


class TestSchedulers:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_schedules(self, seed, rng):
        placement = random_placement(24, 6, rng)
        result = run_experiment(ALGO, placement, scheduler=RandomScheduler(seed))
        assert result.ok

    def test_laggard_adversary(self, rng):
        placement = random_placement(20, 5, rng)
        result = run_experiment(
            ALGO, placement, scheduler=LaggardScheduler([0, 2], patience=60, seed=1)
        )
        assert result.ok

    def test_burst_adversary(self, rng):
        placement = random_placement(20, 5, rng)
        result = run_experiment(ALGO, placement, scheduler=BurstScheduler(25, seed=2))
        assert result.ok

    def test_schedule_independence_of_final_set(self, rng):
        # The final occupied set is schedule-independent (deterministic
        # algorithm + deterministic placement).
        placement = random_placement(21, 7, rng)
        sync = run_experiment(ALGO, placement)
        for seed in range(3):
            async_result = run_experiment(
                ALGO, placement, scheduler=RandomScheduler(seed)
            )
            assert async_result.final_positions == sync.final_positions


class TestComplexity:
    def test_time_is_linear(self, rng):
        # Ideal time <= 3n: one selection circuit + at most 2n deployment.
        for n, k in [(24, 4), (48, 8), (96, 8)]:
            result = run_experiment(ALGO, random_placement(n, k, rng))
            assert result.ideal_time <= 3 * n + 5

    def test_total_moves_bounded_by_3kn(self, rng):
        for n, k in [(24, 4), (48, 8)]:
            result = run_experiment(ALGO, random_placement(n, k, rng))
            assert result.total_moves <= 3 * k * n

    def test_memory_grows_with_k(self, rng):
        # O(k log n): doubling k roughly doubles the stored sequence.
        small = run_experiment(ALGO, random_placement(64, 4, rng), memory_audit_interval=1)
        large = run_experiment(ALGO, random_placement(64, 16, rng), memory_audit_interval=1)
        assert large.max_memory_bits > 2 * small.max_memory_bits / 1.5

    def test_memory_upper_bound(self, rng):
        # Bits <= c * k * log2(n) for a generous constant c.
        for n, k in [(32, 4), (64, 8), (128, 16)]:
            result = run_experiment(
                ALGO, random_placement(n, k, rng), memory_audit_interval=1
            )
            assert result.max_memory_bits <= 6 * k * math.log2(n) + 64


class TestDeterminism:
    def test_targets_are_rotation_of_uniform_pattern(self, rng):
        placement = random_placement(28, 7, rng)
        result = run_experiment(ALGO, placement)
        gaps = sorted(
            (b - a) % 28
            for a, b in zip(
                result.final_positions,
                result.final_positions[1:] + result.final_positions[:1],
            )
        )
        assert gaps == [4] * 7

    def test_base_node_is_min_rotation_home(self):
        # The agent whose rotation is minimal stays at its home (rank 0).
        placement = placement_from_distances((5, 7, 4, 8))
        result = run_experiment(ALGO, placement)
        from repro.analysis.sequences import minimal_rotation_index

        homes = placement.homes
        gaps = placement.distances
        base_index = minimal_rotation_index(gaps)
        assert homes[base_index] in result.final_positions
