"""Tests for the tree/graph ring embeddings (E17, paper Section 5)."""

from __future__ import annotations

import random

import pytest

from repro.embedding.deploy import deploy_on_graph, deploy_on_tree
from repro.embedding.general import Graph, bfs_spanning_tree, random_connected_graph
from repro.embedding.tree import (
    Tree,
    VirtualRing,
    euler_tour,
    path_tree,
    random_tree,
    star_tree,
)
from repro.errors import ConfigurationError


class TestTree:
    def test_validation_edge_count(self):
        with pytest.raises(ConfigurationError):
            Tree(3, [(0, 1)])

    def test_validation_connectivity(self):
        with pytest.raises(ConfigurationError):
            Tree(4, [(0, 1), (0, 1), (2, 3)])

    def test_validation_self_loop(self):
        with pytest.raises(ConfigurationError):
            Tree(2, [(0, 0)])

    def test_distance(self):
        tree = path_tree(5)
        assert tree.distance(0, 4) == 4
        assert tree.distance(2, 2) == 0

    def test_star_distances(self):
        tree = star_tree(6)
        assert tree.distance(1, 5) == 2
        assert tree.distance(0, 3) == 1

    def test_random_tree_is_valid(self):
        tree = random_tree(30, random.Random(4))
        assert tree.size == 30  # construction already validates


class TestEulerTour:
    @pytest.mark.parametrize("builder,size", [(path_tree, 6), (star_tree, 6)])
    def test_length_is_two_n_minus_two(self, builder, size):
        tree = builder(size)
        assert len(euler_tour(tree)) == 2 * (size - 1)

    def test_tour_ends_at_root(self):
        tree = random_tree(12, random.Random(1))
        tour = euler_tour(tree, root=0)
        assert tour[-1] == 0

    def test_tour_visits_every_node(self):
        tree = random_tree(15, random.Random(2))
        assert set(euler_tour(tree)) | {0} == set(range(15))

    def test_consecutive_positions_are_adjacent(self):
        tree = random_tree(10, random.Random(3))
        tour = [0] + euler_tour(tree, root=0)
        for a, b in zip(tour, tour[1:]):
            assert tree.distance(a, b) == 1

    def test_single_node_tree(self):
        assert euler_tour(Tree(1, [])) == [0]


class TestVirtualRing:
    def test_home_mapping_round_trip(self):
        tree = path_tree(8)
        ring = VirtualRing.of(tree)
        for node in range(1, 8):
            virtual = ring.virtual_home(node)
            assert ring.tree_node(virtual) == node

    def test_placement_distinct_homes(self):
        tree = random_tree(12, random.Random(5))
        ring = VirtualRing.of(tree)
        placement = ring.placement([1, 4, 7])
        assert placement.agent_count == 3
        assert placement.ring_size == 2 * 11

    def test_root_has_no_first_visit_entry(self):
        # The root appears in the tour only on returns; virtual_home
        # still finds its first occurrence.
        tree = path_tree(4)
        ring = VirtualRing.of(tree)
        assert ring.tree_node(ring.virtual_home(0)) == 0


class TestDeployment:
    @pytest.mark.parametrize("algorithm", ["known_k_full", "known_k_logspace", "unknown"])
    def test_deploy_on_random_tree(self, algorithm):
        tree = random_tree(18, random.Random(6))
        outcome = deploy_on_tree(tree, [1, 5, 9, 13], algorithm=algorithm)
        assert outcome.ok, outcome.virtual.report.describe()
        assert len(outcome.tree_positions) == 4

    def test_path_tree_dispersion(self):
        outcome = deploy_on_tree(path_tree(16), [0, 1, 2, 3])
        assert outcome.ok
        # Uniform on the 30-node virtual ring spreads agents along the
        # path: no two agents finish on the same tree node here.
        assert outcome.min_tree_distance >= 1
        assert outcome.distinct_tree_nodes == 4

    def test_star_tree_deployment(self):
        outcome = deploy_on_tree(star_tree(10), [1, 2, 3])
        assert outcome.ok

    def test_moves_scale_with_virtual_ring(self):
        # The virtual ring has 2(n-1) nodes; total moves stay within the
        # Algorithm 1 bound of 3 * k * 2(n-1).
        tree = random_tree(20, random.Random(7))
        outcome = deploy_on_tree(tree, [2, 6, 10, 14])
        assert outcome.virtual.total_moves <= 3 * 4 * 2 * 19


class TestGraphs:
    def test_bfs_spanning_tree(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)])
        tree = bfs_spanning_tree(graph)
        assert tree.size == 5

    def test_disconnected_graph_rejected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ConfigurationError):
            bfs_spanning_tree(graph)

    def test_random_connected_graph(self):
        graph = random_connected_graph(20, 10, random.Random(8))
        tree = bfs_spanning_tree(graph)
        assert tree.size == 20

    def test_deploy_on_graph(self):
        graph = random_connected_graph(16, 8, random.Random(9))
        outcome = deploy_on_graph(graph, [1, 5, 9], algorithm="known_k_full")
        assert outcome.ok

    def test_duplicate_edges_ignored(self):
        graph = Graph(3, [(0, 1), (1, 0), (1, 2)])
        assert len(graph.edges) == 2
