"""Tests for Algorithms 2+3 (knowledge of k, O(log n) memory) — E2, E10, E11."""

from __future__ import annotations

import math

import pytest

from repro.core.known_k_logspace import KnownKLogSpaceAgent
from repro.errors import ConfigurationError
from repro.experiments.runner import build_engine, run_experiment
from repro.ring.placement import (
    Placement,
    equidistant_placement,
    periodic_placement,
    placement_from_distances,
    quarter_packed_placement,
    random_placement,
)
from repro.sim.scheduler import BurstScheduler, LaggardScheduler, RandomScheduler

ALGO = "known_k_logspace"


def _figure5_placement() -> Placement:
    """Figure 5: n = 18, k = 9, three base nodes with 2 homes between.

    Homes of a1, a2, a3 are 6 apart (the bases); between consecutive
    bases sit two more homes.  Distances: (2, 2, 2) repeated 3 times
    gives degree 9; the figure's layout is (1, 2, 3)^3 style — we use an
    aperiodic in-segment pattern repeated three times.
    """
    return periodic_placement((1, 2, 3), 3)


class TestSelectionPhase:
    def test_figure5_base_count(self):
        # The selected base nodes must satisfy the base-node conditions;
        # for the Figure 5-style layout, 3 leaders emerge.
        placement = _figure5_placement()
        engine = build_engine(ALGO, placement)
        engine.run()
        leaders = [
            agent_id
            for agent_id in engine.agent_ids
            if engine.agent(agent_id).is_leader
        ]
        assert len(leaders) == 3

    def test_figure6_id_measurement(self):
        # Figure 6: the segment from the agent's home to the next active
        # node spans 5 nodes with 2 followers in between -> ID (5, 2).
        # Build it directly: in sub-phase 2, agents at homes 0 and 5
        # remain active, homes 2 and 4 are followers.
        # Layout distances from home 0: (2, 2, 1, 5) over n = 10.
        placement = placement_from_distances((2, 2, 1, 5))
        engine = build_engine(ALGO, placement)
        engine.run()
        agents = [engine.agent(agent_id) for agent_id in engine.agent_ids]
        # Exactly one leader must exist for this aperiodic layout.
        assert sum(1 for agent in agents if agent.is_leader) == 1

    def test_aperiodic_single_leader(self, rng):
        for _ in range(5):
            placement = random_placement(20, 5, rng)
            if placement.symmetry_degree != 1:
                continue
            engine = build_engine(ALGO, placement)
            engine.run()
            leaders = [
                agent_id
                for agent_id in engine.agent_ids
                if engine.agent(agent_id).is_leader
            ]
            assert len(leaders) == 1

    def test_periodic_leader_count_divides_k(self):
        placement = periodic_placement((2, 5, 3), 2)
        engine = build_engine(ALGO, placement)
        engine.run()
        leaders = sum(
            1 for agent_id in engine.agent_ids if engine.agent(agent_id).is_leader
        )
        assert leaders == 2  # symmetry degree of the layout

    def test_equidistant_all_leaders(self):
        placement = equidistant_placement(18, 6)
        engine = build_engine(ALGO, placement)
        engine.run()
        assert all(engine.agent(a).is_leader for a in engine.agent_ids)

    def test_sub_phase_count_is_logarithmic(self, rng):
        # phase <= ceil(log2 k) + 1 for every agent.
        for _ in range(5):
            placement = random_placement(40, 8, rng)
            engine = build_engine(ALGO, placement)
            engine.run()
            bound = math.ceil(math.log2(8)) + 1
            for agent_id in engine.agent_ids:
                assert engine.agent(agent_id).phase <= bound


class TestCorrectness:
    @pytest.mark.parametrize(
        "distances",
        [
            (5, 7, 4, 8),
            (1, 4, 2, 1, 2, 2),  # Figure 1(a)
            (1, 2, 3, 1, 2, 3),  # Figure 1(b)
            (2, 2, 2),  # uniform already
            (1, 1, 1, 9),
            (2, 2, 1, 5),
        ],
    )
    def test_exact_configurations(self, distances):
        result = run_experiment(ALGO, placement_from_distances(distances))
        assert result.ok, result.report.describe()

    @pytest.mark.parametrize("n,k", [(12, 4), (13, 4), (17, 5), (30, 6), (8, 8), (7, 2)])
    def test_random_placements(self, n, k, rng):
        for _ in range(3):
            result = run_experiment(ALGO, random_placement(n, k, rng))
            assert result.ok, result.report.describe()

    def test_single_agent(self):
        result = run_experiment(ALGO, Placement(ring_size=6, homes=(2,)))
        assert result.ok

    def test_quarter_packed(self):
        result = run_experiment(ALGO, quarter_packed_placement(32, 8))
        assert result.ok

    def test_follower_home_on_target_node(self):
        # Layout where a waiting follower's home coincides with a target
        # (the subtle Algorithm 3 hunting case): homes 0,1,2,5 on n=8,
        # leader emerges at home 1, targets {1,3,5,7}, follower home 5.
        result = run_experiment(ALGO, placement_from_distances((1, 1, 3, 3)))
        assert result.ok

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            KnownKLogSpaceAgent(-1)


class TestSchedulers:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_schedules(self, seed, rng):
        placement = random_placement(24, 6, rng)
        result = run_experiment(ALGO, placement, scheduler=RandomScheduler(seed))
        assert result.ok, result.report.describe()

    def test_laggard_adversary_on_leader(self, rng):
        # Starve agent 0 (often a leader candidate) aggressively.
        placement = random_placement(20, 5, rng)
        result = run_experiment(
            ALGO, placement, scheduler=LaggardScheduler([0], patience=120, seed=3)
        )
        assert result.ok

    def test_burst_adversary(self, rng):
        placement = random_placement(20, 5, rng)
        result = run_experiment(ALGO, placement, scheduler=BurstScheduler(40, seed=5))
        assert result.ok

    def test_follower_on_target_under_adversary(self):
        placement = placement_from_distances((1, 1, 3, 3))
        for seed in range(8):
            result = run_experiment(
                ALGO, placement, scheduler=RandomScheduler(seed)
            )
            assert result.ok, f"seed {seed}: {result.report.describe()}"


class TestComplexity:
    def test_memory_is_logarithmic(self, rng):
        # Memory must not grow with k (only with log n): compare k=4 and
        # k=16 on the same n.
        small_k = run_experiment(
            ALGO, random_placement(64, 4, rng), memory_audit_interval=1
        )
        large_k = run_experiment(
            ALGO, random_placement(64, 16, rng), memory_audit_interval=1
        )
        assert large_k.max_memory_bits <= small_k.max_memory_bits + 32

    def test_memory_much_smaller_than_full_algorithm(self, rng):
        placement = random_placement(128, 32, rng)
        logspace = run_experiment(ALGO, placement, memory_audit_interval=1)
        full = run_experiment("known_k_full", placement, memory_audit_interval=1)
        assert logspace.max_memory_bits < full.max_memory_bits / 2

    def test_time_is_n_log_k(self, rng):
        for n, k in [(24, 4), (48, 8)]:
            result = run_experiment(ALGO, random_placement(n, k, rng))
            bound = n * (math.ceil(math.log2(k)) + 3) + 10
            assert result.ideal_time <= bound

    def test_total_moves_bounded(self, rng):
        for n, k in [(24, 4), (48, 8)]:
            result = run_experiment(ALGO, random_placement(n, k, rng))
            assert result.total_moves <= 4 * k * n


class TestMessages:
    def test_every_follower_receives_a_notice(self, rng):
        placement = random_placement(30, 6, rng)
        engine = build_engine(ALGO, placement)
        engine.run()
        followers = sum(
            1 for a in engine.agent_ids if engine.agent(a).is_leader is False
        )
        assert engine.metrics.messages_sent == followers
