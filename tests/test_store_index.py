"""The store's secondary index: SQLite vs the JSONL scan, differentially.

The SQLite index (``<store>/index.sqlite``) is pure derived data over
the append-only shards; these tests pin that it can never *disagree*
with the source of truth:

* every index question (hashes, winners, filters, prefix resolution,
  pagination) answered by the SQLite backend equals the answer from a
  full in-memory JSONL scan — including a hypothesis property over
  random put/replace/reopen interleavings,
* the index is rebuilt whenever the shard files change under it
  (deletion, rename, truncation, in-place rewrite, corrupt database,
  schema bump) instead of answering from stale rows,
* snapshots pin a byte frontier: a reader's view is stable across
  concurrent ``put()``s — the threaded stress test at the bottom runs a
  live writer against snapshot readers and asserts nobody ever sees a
  torn or shifting view.
"""

from __future__ import annotations

import json
import sqlite3
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiment
from repro.spec import ExperimentSpec, PlacementSpec
from repro.store import RunRecord, RunStore
from repro.store.index import INDEX_SCHEMA_VERSION, SqliteLineIndex


def _spec(algorithm="known_k_full", seed=1, scheduler="sync", n=18, k=3):
    return ExperimentSpec(
        algorithm=algorithm,
        placement=PlacementSpec(
            kind="random", ring_size=n, agent_count=k, seed=seed
        ),
        scheduler=scheduler,
        scheduler_seed=seed ^ 0xBEEF,
    )


def _record(**kwargs) -> RunRecord:
    spec = _spec(**kwargs)
    return run_experiment(spec).to_record(spec)


# One real result payload reused under many fabricated hashes: cheap
# records for tests that need volume, not physics.
_TEMPLATE = _record(seed=999).to_dict()


def _fake_record(index: int, *, algorithm=None) -> RunRecord:
    data = json.loads(json.dumps(_TEMPLATE))
    data["content_hash"] = f"{index:064x}"
    if algorithm is not None:
        data["result"]["algorithm"] = algorithm
    return RunRecord.from_dict(data)


def _same_view(sqlite_store: RunStore, oracle: RunStore) -> None:
    """Assert both handles answer every index question identically."""
    assert sqlite_store.hashes() == oracle.hashes()
    assert len(sqlite_store) == len(oracle)
    for content_hash in oracle.hashes():
        assert sqlite_store.contains(content_hash)
        assert sqlite_store.get(content_hash) == oracle.get(content_hash)
    assert sqlite_store.digest() == oracle.digest()


class TestDifferentialSqliteVsScan:
    def test_basic_agreement_after_puts(self, tmp_path):
        root = tmp_path / "s"
        store = RunStore(root)
        for seed in range(5):
            store.put(_record(seed=seed))
        _same_view(RunStore(root), RunStore(root, index="memory"))

    def test_agreement_with_replacements(self, tmp_path):
        root = tmp_path / "s"
        store = RunStore(root)
        record = _record(seed=7)
        store.put(record)
        doctored = RunRecord(
            content_hash=record.content_hash,
            result=dict(record.result, total_moves=-1),
            spec=record.spec,
        )
        store.put(doctored, replace=True)
        sqlite_store = RunStore(root)
        oracle = RunStore(root, index="memory")
        _same_view(sqlite_store, oracle)
        assert sqlite_store.get(record.content_hash) == doctored

    def test_query_filters_and_pagination_agree(self, tmp_path):
        root = tmp_path / "s"
        store = RunStore(root)
        for index in range(20):
            algorithm = ("known_k_full", "unknown")[index % 2]
            store.put(_fake_record(index, algorithm=algorithm))
        sqlite_store = RunStore(root)
        oracle = RunStore(root, index="memory")
        for filters in (
            {},
            {"algorithm": "unknown"},
            {"hash_prefix": "0" * 50},
            {"limit": 7},
            {"limit": 7, "offset": 7},
            {"offset": 18},
            {"algorithm": "known_k_full", "limit": 3, "offset": 2},
        ):
            fast = [r.content_hash for r in sqlite_store.query(**filters)]
            slow = [r.content_hash for r in oracle.query(**filters)]
            assert fast == slow, filters
        assert sqlite_store.count(algorithm="unknown") == oracle.count(
            algorithm="unknown"
        )

    def test_pagination_tiles_the_full_listing(self, tmp_path):
        store = RunStore(tmp_path / "s")
        for index in range(13):
            store.put(_fake_record(index))
        pages = []
        for offset in range(0, 13, 4):
            pages.extend(
                r.content_hash for r in store.query(limit=4, offset=offset)
            )
        assert pages == store.hashes()  # no gaps, no repeats, hash order

    def test_verify_index_passes_and_counts(self, tmp_path):
        store = RunStore(tmp_path / "s")
        for seed in range(4):
            store.put(_record(seed=seed))
        assert store.verify_index() == 4

    def test_verify_index_catches_a_poisoned_index(self, tmp_path):
        root = tmp_path / "s"
        store = RunStore(root)
        store.put(_record(seed=3))
        # Corrupt the derived data behind the store's back: claim a
        # record that isn't in any shard.
        conn = sqlite3.connect(root / "index.sqlite")
        with conn:
            conn.execute(
                "INSERT INTO lines(shard, offset, length, content_hash,"
                " algorithm, scheduler, ring_size, agent_count, uniform,"
                " stamp) VALUES('shard-0.jsonl', 0, 10, ?, 'x', 'x', 1, 1,"
                " 0, 9)",
                ("f" * 64,),
            )
        conn.close()
        with pytest.raises(ConfigurationError, match="disagrees"):
            store.verify_index()

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),  # which fake record
                st.booleans(),  # replace?
                st.booleans(),  # reopen the handle first?
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_property_index_equals_scan(self, tmp_path_factory, ops):
        root = tmp_path_factory.mktemp("prop") / "s"
        store = RunStore(root)
        for which, replace, reopen in ops:
            if reopen:
                store = RunStore(root)
            record = _fake_record(which)
            if replace:
                record = RunRecord(
                    content_hash=record.content_hash,
                    result=dict(
                        record.result, total_moves=len(store) * 1000 + which
                    ),
                    spec=record.spec,
                )
            store.put(record, replace=replace)
        store.verify_index()
        _same_view(RunStore(root), RunStore(root, index="memory"))


class TestIndexLifecycle:
    def test_preexisting_store_is_migrated_on_first_open(self, tmp_path):
        root = tmp_path / "s"
        legacy = RunStore(root, index="memory")  # writes no index.sqlite
        for seed in range(3):
            legacy.put(_record(seed=seed))
        assert not (root / "index.sqlite").exists()
        migrated = RunStore(root)  # first sqlite open: full tail
        assert (root / "index.sqlite").exists()
        _same_view(migrated, legacy)

    def test_deleting_the_index_loses_nothing(self, tmp_path):
        root = tmp_path / "s"
        store = RunStore(root)
        for seed in range(3):
            store.put(_record(seed=seed))
        digest = store.digest()
        (root / "index.sqlite").unlink()
        reopened = RunStore(root)
        assert reopened.digest() == digest
        assert len(reopened) == 3

    def test_corrupt_database_file_triggers_rebuild(self, tmp_path):
        root = tmp_path / "s"
        store = RunStore(root)
        store.put(_record(seed=1))
        digest = store.digest()
        (root / "index.sqlite").write_bytes(b"this is not a database")
        reopened = RunStore(root)
        assert reopened.digest() == digest

    def test_schema_bump_triggers_rebuild(self, tmp_path):
        root = tmp_path / "s"
        store = RunStore(root)
        store.put(_record(seed=1))
        conn = sqlite3.connect(root / "index.sqlite")
        with conn:
            conn.execute(
                "UPDATE meta SET value=? WHERE key='schema'",
                (str(INDEX_SCHEMA_VERSION + 1),),
            )
            # Poison a row: a real rebuild must discard it.
            conn.execute("UPDATE lines SET content_hash=?", ("e" * 64,))
        conn.close()
        reopened = RunStore(root)
        assert reopened.hashes() == RunStore(root, index="memory").hashes()

    def test_truncated_shard_triggers_rebuild(self, tmp_path):
        root = tmp_path / "s"
        store = RunStore(root)
        first = _record(seed=1)
        store.put(first)
        store.put(_record(seed=2))
        shard = next(root.glob("shard-*.jsonl"))
        lines = shard.read_bytes().splitlines(keepends=True)
        shard.write_bytes(lines[0])  # drop the second record
        reopened = RunStore(root)
        assert len(reopened) == 1
        assert first.content_hash in reopened

    def test_rebuild_index_method(self, tmp_path):
        store = RunStore(tmp_path / "s")
        for seed in range(3):
            store.put(_record(seed=seed))
        assert store.rebuild_index() == 3
        assert store.verify_index() == 3

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="index backend"):
            RunStore(tmp_path / "s", index="redis")

    def test_memory_and_sqlite_handles_interoperate(self, tmp_path):
        root = tmp_path / "s"
        writer = RunStore(root, index="memory")  # never touches sqlite
        reader = RunStore(root)
        writer.put(_record(seed=5))
        # Tail-driven indexing self-heals: the sqlite reader discovers
        # bytes appended by the index-oblivious writer on refresh.
        assert reader.refresh() == 1
        _same_view(reader, RunStore(root, index="memory"))


class TestSnapshotIsolation:
    def test_snapshot_is_stable_across_puts(self, tmp_path):
        store = RunStore(tmp_path / "s")
        first = _record(seed=1)
        store.put(first)
        snap = store.snapshot()
        assert len(snap) == 1
        later = _record(seed=2)
        store.put(later)
        # The live handle sees its own append; the snapshot does not.
        assert later.content_hash in store
        assert later.content_hash not in snap
        assert len(snap) == 1
        assert snap.hashes() == [first.content_hash]
        assert snap.get(first.content_hash) == first

    def test_snapshot_survives_replacement_of_its_records(self, tmp_path):
        store = RunStore(tmp_path / "s")
        record = _record(seed=3)
        store.put(record)
        snap = store.snapshot()
        doctored = RunRecord(
            content_hash=record.content_hash,
            result=dict(record.result, total_moves=-5),
            spec=record.spec,
        )
        store.put(doctored, replace=True)
        # Append-only shards: the snapshot still reads the *old* line.
        assert store.get(record.content_hash) == doctored
        assert snap.get(record.content_hash) == record

    def test_snapshot_digest_pins_the_frontier(self, tmp_path):
        store = RunStore(tmp_path / "s")
        store.put(_record(seed=1))
        snap = store.snapshot()
        digest = snap.digest()
        store.put(_record(seed=2))
        assert snap.digest() == digest
        assert store.digest() != digest

    def test_refresh_does_not_move_existing_snapshots(self, tmp_path):
        root = tmp_path / "s"
        reader = RunStore(root)
        writer = RunStore(root, index="memory")
        snap = reader.snapshot()
        writer.put(_record(seed=9))
        reader.refresh()
        assert len(reader) == 1
        assert len(snap) == 0


class TestConcurrentAccess:
    def test_writer_thread_vs_snapshot_readers(self, tmp_path):
        """A live writer appending while readers snapshot and query:
        every snapshot's view must be internally consistent (len ==
        hashes == loadable records, stable across the writer's
        progress) and never torn."""
        root = tmp_path / "s"
        writer = RunStore(root)
        records = [_fake_record(i) for i in range(60)]
        errors = []
        done = threading.Event()

        def write() -> None:
            try:
                for record in records:
                    writer.put(record)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)
            finally:
                done.set()

        def read() -> None:
            try:
                reader = RunStore(root)
                while not done.is_set():
                    reader.refresh()
                    snap = reader.snapshot()
                    seen = snap.hashes()
                    # A frozen view: count, listing and every record
                    # must agree with each other right now...
                    assert len(snap) == len(seen)
                    loaded = list(snap.iter_records())
                    assert [r.content_hash for r in loaded] == seen
                    # ...and still agree after the writer moved on.
                    assert snap.hashes() == seen
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        readers = [threading.Thread(target=read) for _ in range(3)]
        writer_thread = threading.Thread(target=write)
        for thread in readers:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=60)
        done.set()
        for thread in readers:
            thread.join(timeout=60)
        assert not errors, errors
        final = RunStore(root)
        assert len(final) == len(records)
        final.verify_index()

    def test_concurrent_puts_across_handles_no_corruption(self, tmp_path):
        root = tmp_path / "s"
        handles = [RunStore(root) for _ in range(4)]
        errors = []

        def hammer(handle, base) -> None:
            try:
                for i in range(15):
                    handle.put(_fake_record(base * 100 + i))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(handle, i))
            for i, handle in enumerate(handles)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        store = RunStore(root)
        assert len(store) == 60
        store.verify_index()
        _same_view(store, RunStore(root, index="memory"))


class TestSqliteLineIndexInternals:
    def test_frontier_clause_empty_frontier_matches_nothing(self, tmp_path):
        index = SqliteLineIndex(tmp_path)
        clause, params = index._frontier_clause({})
        assert clause == "0" and params == []

    def test_add_line_is_idempotent(self, tmp_path):
        root = tmp_path
        index = SqliteLineIndex(root)
        payload = {"content_hash": "a" * 64, "_ts": 5, "result": {}}
        index.add_line("shard-1.jsonl", 0, 40, payload, advance_to=41)
        index.add_line("shard-1.jsonl", 0, 40, payload, advance_to=41)
        assert index.count(None) == 1
        assert index.frontier() == {"shard-1.jsonl": 41}
