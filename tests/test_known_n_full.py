"""Tests for the footnote-2 variant: knowledge of n instead of k."""

from __future__ import annotations

import pytest

from repro.core.known_n_full import KnownNFullAgent
from repro.errors import ConfigurationError
from repro.experiments.runner import build_engine, run_experiment
from repro.ring.placement import (
    Placement,
    equidistant_placement,
    periodic_placement,
    placement_from_distances,
    random_placement,
)
from repro.sim.scheduler import LaggardScheduler, RandomScheduler

ALGO = "known_n_full"


class TestCorrectness:
    @pytest.mark.parametrize(
        "distances",
        [
            (5, 7, 4, 8),
            (1, 4, 2, 1, 2, 2),
            (1, 2, 3, 1, 2, 3),
            (3, 3, 3),
            (1, 1, 1, 9),
        ],
    )
    def test_exact_configurations(self, distances):
        result = run_experiment(ALGO, placement_from_distances(distances))
        assert result.ok, result.report.describe()

    @pytest.mark.parametrize("n,k", [(12, 4), (13, 4), (17, 5), (9, 9), (7, 2)])
    def test_random_placements(self, n, k, rng):
        for _ in range(3):
            result = run_experiment(ALGO, random_placement(n, k, rng))
            assert result.ok, result.report.describe()

    def test_learns_k_from_tokens(self, rng):
        placement = random_placement(20, 5, rng)
        engine = build_engine(ALGO, placement)
        engine.run()
        for agent_id in engine.agent_ids:
            assert engine.agent(agent_id).k == 5

    def test_matches_known_k_variant_exactly(self, rng):
        # Same deployment rule, different circuit detection: the final
        # configurations must be identical.
        for _ in range(5):
            placement = random_placement(24, 6, rng)
            by_k = run_experiment("known_k_full", placement)
            by_n = run_experiment(ALGO, placement)
            assert by_k.final_positions == by_n.final_positions
            assert by_k.total_moves == by_n.total_moves

    def test_periodic_ring(self):
        assert run_experiment(ALGO, periodic_placement((2, 5, 3), 2)).ok

    def test_single_agent(self):
        assert run_experiment(ALGO, Placement(ring_size=7, homes=(2,))).ok

    def test_async_schedulers(self, rng):
        placement = random_placement(18, 4, rng)
        for scheduler in (RandomScheduler(3), LaggardScheduler([1], patience=50)):
            assert run_experiment(ALGO, placement, scheduler=scheduler).ok

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            KnownNFullAgent(0)

    def test_already_uniform(self):
        placement = equidistant_placement(20, 5)
        result = run_experiment(ALGO, placement)
        assert result.ok
        assert result.final_positions == placement.homes
