"""Parallel frontier driver and disk spill: parity, resume, SIGKILL.

The wave-synchronous driver advertises three strong guarantees, each
pinned here:

* **Serial parity** — ``check_frontier(jobs=1)`` matches the DFS of
  ``check_interleavings`` on every cumulative counter and on the
  terminal-state key set.
* **Jobs invariance** — ``jobs=2`` reports numbers byte-identical to
  ``jobs=1`` (the merge order is globally sorted, not arrival order).
* **Resumability** — a spilled check killed at an arbitrary point (a
  torn journal tail, or a real ``SIGKILL`` of the CLI process mid-run)
  resumes from the last committed wave and finishes with the *same*
  verdict and cumulative stats as an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.mc import (
    check_frontier,
    check_hash,
    check_interleavings,
    check_placements_pool,
    check_spec,
    exhaust_placements,
    replay_counterexample,
)
from repro.mc.frontier import FrontierSpill
from repro.mc.properties import default_safety_properties, resolve_terminal
from repro.mc.selftest import wake_race_agents
from repro.ring.placement import Placement

PLACEMENT = Placement(ring_size=8, homes=(0, 3))
BUG_PLACEMENT = Placement(ring_size=8, homes=(0, 1, 3))


def _spill_for(store: Path, algorithm: str, placement: Placement) -> FrontierSpill:
    n, k = placement.ring_size, placement.agent_count
    spec = check_spec(
        algorithm,
        placement,
        por=True,
        depth_limit=None,
        max_states=None,
        stop_at_first=True,
        safety_props=tuple(default_safety_properties(n, k)),
        terminal_props=(resolve_terminal(algorithm, None, None),),
    )
    return FrontierSpill(str(store), spec)


# ----------------------------------------------------------------------
# Parity with the serial DFS, and jobs invariance
# ----------------------------------------------------------------------


def test_frontier_matches_serial_dfs():
    serial = check_interleavings("unknown", PLACEMENT)
    frontier = check_frontier("unknown", PLACEMENT, jobs=1)
    assert frontier.ok and serial.ok
    assert frontier.explored == serial.explored
    assert frontier.terminals == serial.terminals
    assert frontier.terminal_keys == serial.terminal_keys
    assert frontier.max_depth == serial.max_depth


def test_frontier_stats_invariant_in_jobs():
    one = check_frontier("unknown", PLACEMENT, jobs=1)
    two = check_frontier("unknown", PLACEMENT, jobs=2)
    assert one.to_dict() == two.to_dict()


def test_frontier_no_por_matches_por_observables():
    reduced = check_frontier("known_k_full", Placement(6, homes=(0, 2)), jobs=1)
    full = check_frontier(
        "known_k_full", Placement(6, homes=(0, 2)), jobs=1, por=False
    )
    assert reduced.explored == full.explored
    assert reduced.terminal_keys == full.terminal_keys
    assert reduced.transitions < full.transitions


def test_frontier_respects_max_states():
    result = check_frontier("unknown", PLACEMENT, jobs=1, max_states=50)
    assert not result.complete
    assert result.explored <= 50 + 1


def test_frontier_rejects_factory_with_jobs():
    with pytest.raises(ValueError):
        check_frontier(
            "wake_race(known_k_logspace)",
            BUG_PLACEMENT,
            jobs=2,
            factory=lambda: wake_race_agents(3),
        )


def test_wake_race_found_by_parallel_frontier_and_replays():
    result = check_frontier(
        "wake_race",
        BUG_PLACEMENT,
        jobs=2,
        require_halted=False,
        require_suspended=True,
    )
    assert result.violations
    violation = result.violations[0]
    assert violation.kind == "terminal"
    _, messages = replay_counterexample(
        violation,
        factory=lambda: wake_race_agents(3),
        require_halted=True,
        require_suspended=False,
    )
    assert messages  # the schedule replays deterministically to a report


# ----------------------------------------------------------------------
# Placement pool (grid fan-out)
# ----------------------------------------------------------------------


def test_placement_pool_matches_serial_grid():
    serial = exhaust_placements("known_k_logspace", 6, 2)
    pooled = exhaust_placements("known_k_logspace", 6, 2, jobs=2)
    assert [r.to_dict() for r in pooled] == [r.to_dict() for r in serial]


def test_placement_pool_rejects_factory():
    with pytest.raises(ValueError):
        check_placements_pool(
            "unknown",
            [PLACEMENT],
            jobs=2,
            factory=lambda: wake_race_agents(2),
        )


# ----------------------------------------------------------------------
# Disk spill: journal, resume, torn tails
# ----------------------------------------------------------------------


def test_spill_writes_journal_and_result(tmp_path):
    result = check_frontier(
        "unknown", PLACEMENT, jobs=1, store_root=str(tmp_path)
    )
    spill = _spill_for(tmp_path, "unknown", PLACEMENT)
    directory = tmp_path / "mc" / spill.hash
    assert (directory / "meta.json").exists()
    assert (directory / "journal.jsonl").exists()
    stored = json.loads((directory / "result.json").read_text())
    assert stored == result.to_dict()
    meta = json.loads((directory / "meta.json").read_text())
    assert check_hash(meta["spec"]) == spill.hash


def test_resume_of_completed_check_short_circuits(tmp_path):
    first = check_frontier("unknown", PLACEMENT, jobs=1, store_root=str(tmp_path))
    spill = _spill_for(tmp_path, "unknown", PLACEMENT)
    journal = tmp_path / "mc" / spill.hash / "journal.jsonl"
    before = journal.stat().st_size
    again = check_frontier(
        "unknown", PLACEMENT, jobs=1, store_root=str(tmp_path), resume=True
    )
    assert again.to_dict() == first.to_dict()
    assert journal.stat().st_size == before  # nothing re-explored


def test_restart_without_resume_wipes_and_reruns(tmp_path):
    first = check_frontier("unknown", PLACEMENT, jobs=1, store_root=str(tmp_path))
    spill = _spill_for(tmp_path, "unknown", PLACEMENT)
    marker = tmp_path / "mc" / spill.hash / "stale-file"
    marker.write_text("stale")
    second = check_frontier("unknown", PLACEMENT, jobs=1, store_root=str(tmp_path))
    assert second.to_dict() == first.to_dict()
    assert not marker.exists()  # start_fresh wiped the directory


def _truncate_journal(journal: Path, keep_commits: int, garbage: str) -> None:
    """Keep the journal through its Nth commit marker, then a torn tail."""
    kept = []
    commits = 0
    for line in journal.read_text(encoding="utf-8").splitlines(keepends=True):
        kept.append(line)
        if '"t":"c"' in line:
            commits += 1
            if commits == keep_commits:
                break
    assert commits == keep_commits, "journal shorter than expected"
    journal.write_text("".join(kept) + garbage, encoding="utf-8")


@pytest.mark.parametrize(
    "garbage",
    ['{"t":"v","k":"ab', '{"t":"i",broken json}\n', ""],
    ids=["mid-line-kill", "corrupt-line", "clean-commit-boundary"],
)
def test_torn_journal_resumes_to_identical_result(tmp_path, garbage):
    clean = check_frontier("unknown", PLACEMENT, jobs=1, store_root=str(tmp_path))
    spill = _spill_for(tmp_path, "unknown", PLACEMENT)
    directory = tmp_path / "mc" / spill.hash
    _truncate_journal(directory / "journal.jsonl", keep_commits=6, garbage=garbage)
    (directory / "result.json").unlink()
    resumed = check_frontier(
        "unknown", PLACEMENT, jobs=1, store_root=str(tmp_path), resume=True
    )
    assert resumed.to_dict() == clean.to_dict()


def test_torn_journal_resumes_under_different_jobs(tmp_path):
    # The check hash excludes `jobs` by design: a run journaled at
    # jobs=1 must resume under jobs=2 with identical results.
    clean = check_frontier("unknown", PLACEMENT, jobs=1, store_root=str(tmp_path))
    spill = _spill_for(tmp_path, "unknown", PLACEMENT)
    directory = tmp_path / "mc" / spill.hash
    _truncate_journal(directory / "journal.jsonl", keep_commits=4, garbage="")
    (directory / "result.json").unlink()
    resumed = check_frontier(
        "unknown", PLACEMENT, jobs=2, store_root=str(tmp_path), resume=True
    )
    assert resumed.to_dict() == clean.to_dict()


def test_resumed_violation_is_not_reexplored(tmp_path):
    found = check_frontier(
        "wake_race",
        BUG_PLACEMENT,
        jobs=1,
        require_halted=False,
        require_suspended=True,
        store_root=str(tmp_path),
    )
    assert found.violations
    again = check_frontier(
        "wake_race",
        BUG_PLACEMENT,
        jobs=1,
        require_halted=False,
        require_suspended=True,
        store_root=str(tmp_path),
        resume=True,
    )
    assert again.to_dict() == found.to_dict()


# ----------------------------------------------------------------------
# The acceptance test: SIGKILL the CLI mid-check, resume, same answer
# ----------------------------------------------------------------------

_KILL_ARGS = [
    "mc",
    "--algorithm",
    "unknown",
    "--n",
    "10",
    "--distances",
    "3,4,3",
    "--json",
]


def _mc_cli(store: Path, *extra: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *_KILL_ARGS, "--store", str(store), *extra],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


def test_sigkill_mid_check_resumes_to_identical_verdict(tmp_path):
    store = tmp_path / "store"
    spill = _spill_for(
        tmp_path, "unknown", Placement(10, homes=(0, 3, 7))
    )  # same spec hashing path; directory comes from the CLI run below

    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", *_KILL_ARGS, "--store", str(store)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    journal = store / "mc" / spill.hash / "journal.jsonl"
    try:
        # Wait until real exploration progress is journaled, then kill
        # without any chance to clean up.
        deadline = time.time() + 120
        committed = 0
        while time.time() < deadline:
            if process.poll() is not None:
                pytest.fail("check finished before it could be killed")
            if journal.exists():
                committed = journal.read_text(encoding="utf-8").count('"t":"c"')
                if committed >= 5:
                    break
            time.sleep(0.02)
        assert committed >= 5, "no committed waves before the deadline"
        os.kill(process.pid, signal.SIGKILL)
    finally:
        process.wait(timeout=60)
    assert process.returncode == -signal.SIGKILL
    assert not (store / "mc" / spill.hash / "result.json").exists()

    resumed = _mc_cli(store, "--resume")
    assert resumed.returncode == 0, resumed.stderr
    document = json.loads(resumed.stdout)

    clean = check_frontier("unknown", Placement(10, homes=(0, 3, 7)), jobs=1)
    cell = document["results"][0]
    assert document["ok"] is True
    assert cell["verdict"] == "ok"
    assert cell["explored"] == clean.explored
    assert cell["transitions"] == clean.transitions
    assert cell["terminals"] == clean.terminals
    assert cell["terminal_keys"] == list(clean.terminal_keys)
    assert cell["max_depth"] == clean.max_depth
