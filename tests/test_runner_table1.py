"""Tests for the experiment runner, Table 1 drivers and formatting."""

from __future__ import annotations

import pytest

from repro.analysis.complexity import (
    bound_ratio_spread,
    is_bounded_by,
    loglog_slope,
    ratios,
)
from repro.errors import ConfigurationError
from repro.experiments.lower_bound import lower_bound_comparison, quarter_sweep
from repro.experiments.runner import ALGORITHMS, build_agents, run_experiment
from repro.experiments.table1 import (
    format_rows,
    symmetry_placement,
    symmetry_sweep,
    table1_sweep,
)
from repro.ring.placement import equidistant_placement, quarter_packed_placement


class TestRunner:
    def test_registry_contents(self):
        assert set(ALGORITHMS) == {
            "known_k_full",
            "known_n_full",
            "known_k_logspace",
            "unknown",
        }

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            build_agents("nope", 3)

    def test_run_result_row(self):
        result = run_experiment("known_k_full", equidistant_placement(12, 3))
        row = result.row()
        assert row["n"] == 12 and row["k"] == 3 and row["uniform"] is True
        assert row["algorithm"] == "known_k_full"
        assert isinstance(row["total_moves"], int)

    def test_agents_are_fresh_instances(self):
        first = build_agents("unknown", 3)
        second = build_agents("unknown", 3)
        assert all(a is not b for a, b in zip(first, second))


class TestSweeps:
    def test_table1_sweep_shapes(self):
        results = table1_sweep("known_k_full", [(12, 3), (16, 4)], trials=2)
        assert len(results) == 4
        assert all(result.ok for result in results)

    def test_symmetry_sweep_monotone_moves(self):
        results = symmetry_sweep(24, 4, [1, 2, 4])
        moves = [result.total_moves for result in results]
        assert moves[0] > moves[1] > moves[2]

    def test_symmetry_placement_validation(self):
        with pytest.raises(ConfigurationError):
            symmetry_placement(24, 4, 3)

    def test_quarter_sweep_rows(self):
        rows = quarter_sweep([(24, 6)], algorithms=("known_k_full",))
        assert rows[0].quarter_floor == (6 // 4) * (24 // 4)
        assert rows[0].ratio("known_k_full") >= 1.0

    def test_lower_bound_comparison_contains_all_algorithms(self):
        row = lower_bound_comparison(
            quarter_packed_placement(24, 6),
            algorithms=("known_k_full", "unknown"),
        )
        assert set(row.algorithm_moves) == {"known_k_full", "unknown"}
        assert row.optimal_moves > 0


class TestFormatting:
    def test_format_rows_alignment(self):
        text = format_rows(
            [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}], columns=["a", "b"]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_rows_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_format_rows_infers_columns(self):
        text = format_rows([{"x": 5}])
        assert "x" in text


class TestComplexityHelpers:
    def test_loglog_slope_exact_power(self):
        xs = [2, 4, 8, 16]
        ys = [x**2 for x in xs]
        assert abs(loglog_slope(xs, ys) - 2.0) < 1e-9

    def test_loglog_slope_linear(self):
        xs = [3, 9, 27]
        ys = [5 * x for x in xs]
        assert abs(loglog_slope(xs, ys) - 1.0) < 1e-9

    def test_loglog_slope_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            loglog_slope([1], [1])

    def test_loglog_slope_identical_x_rejected(self):
        with pytest.raises(ConfigurationError):
            loglog_slope([2, 2], [1, 4])

    def test_ratios_and_spread(self):
        measurements = [(10, 20), (20, 50)]
        values = ratios(measurements, lambda x: x)
        assert values == [2.0, 2.5]
        assert bound_ratio_spread(measurements, lambda x: x) == (2.0, 2.5)

    def test_ratios_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigurationError):
            ratios([(0, 1)], lambda x: x)

    def test_is_bounded_by(self):
        measurements = [(4, 12), (8, 20)]
        assert is_bounded_by(measurements, lambda x: x, constant=3)
        assert not is_bounded_by(measurements, lambda x: x, constant=2)
