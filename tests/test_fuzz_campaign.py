"""Full-budget fuzzing campaigns (the `fuzz` CI job's acceptance gate).

The validation gate that makes the fuzzer real: the injected
``wake_race`` defect — which survives every sampled scheduler in the
mc selftest and is far beyond exhaustive reach at these sizes — must be
rediscovered on n=16..24, k=4..6 within a bounded budget, and every
shrunk counterexample must replay deterministically to the same
violation through the stock experiment path.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_experiment
from repro.fuzz import FuzzSpec, fuzz
from repro.mc import PropertyOracle, drive_schedule
from repro.ring.placement import Placement
from repro.spec import PlacementSpec

pytestmark = pytest.mark.fuzz


@pytest.mark.parametrize(
    "ring_size,agent_count",
    [(16, 4), (20, 5), (24, 6)],
)
def test_wake_race_rediscovered_beyond_mc_reach(ring_size, agent_count):
    # `repro mc` exhausts n<=8, k<=3 in seconds; at n=16..24, k=4..6 the
    # state space is astronomically larger — only the fuzzer's sampled,
    # coverage-guided search can cover it.
    spec = FuzzSpec(
        algorithm="wake_race",
        placement=PlacementSpec(
            kind="random", ring_size=ring_size, agent_count=agent_count, seed=0
        ),
        budget=1000,  # the CLI default budget
        placements=4,
        seed=0,
    )
    outcome = fuzz(spec)
    assert outcome.found, (
        f"fuzzer missed the injected wake_race bug at n={ring_size}, "
        f"k={agent_count} within {spec.budget} runs"
    )
    failure = outcome.failures[0]
    assert failure.kind == "terminal"
    assert failure.property_name == "uniform-terminal"
    assert failure.replay_verified
    assert len(failure.shrunk) <= len(failure.schedule)

    # Deterministic replay, twice, through two independent paths:
    # the stock ExperimentSpec/ReplayScheduler pipeline...
    experiment = failure.experiment_spec()
    first = run_experiment(experiment)
    second = run_experiment(experiment)
    assert not first.ok and not second.ok
    assert first.final_positions == second.final_positions
    # ... and the oracle-checked replay driver, message for message.
    oracle = PropertyOracle(
        "wake_race",
        Placement(ring_size=failure.ring_size, homes=failure.homes),
    )
    replays = [
        drive_schedule(oracle, failure.shrunk, max_steps=spec.run_step_cap(
            experiment.build_placement()
        ))
        for _ in range(2)
    ]
    assert replays[0] == replays[1]
    assert replays[0].violation is not None
    assert replays[0].violation.property_name == failure.property_name
    assert replays[0].violation.message == failure.message


def test_correct_algorithms_survive_a_full_campaign():
    # The same budget against correct algorithms must stay clean — the
    # fuzzer's positive finding above is meaningful only if its oracles
    # do not cry wolf.
    for algorithm in ("known_k_full", "known_k_logspace"):
        spec = FuzzSpec(
            algorithm=algorithm,
            placement=PlacementSpec(kind="random", ring_size=16, agent_count=4, seed=0),
            budget=200,
            placements=3,
            seed=0,
        )
        outcome = fuzz(spec)
        assert not outcome.found, outcome.failures
        assert outcome.complete
        assert outcome.states > 1000  # coverage actually accumulated


def test_hard_selftest_placement_budget_margin():
    # The mc selftest's needle placement, with a margin: 10 different
    # campaign seeds, each of which must find the race within 100 runs.
    for seed in range(10):
        spec = FuzzSpec(
            algorithm="wake_race",
            placement=PlacementSpec(kind="distances", distances=(1, 2, 5)),
            budget=100,
            placements=1,
            seed=seed,
        )
        outcome = fuzz(spec)
        assert outcome.found, f"campaign seed {seed} missed the race"
        assert outcome.failures[0].replay_verified
