"""Hypothesis stateful test: arbitrary single-step engine driving.

A :class:`RuleBasedStateMachine` drives one engine one *arbitrary*
enabled-agent step at a time — hypothesis owns the schedule, and
shrinking turns any failure into a minimal activation sequence.  After
every step the machine re-checks the engine invariants:

* the incremental enabled set equals the O(k) recompute oracle,
* the configuration conserves agents (each in exactly one place) and
  message accounting (``audit_configuration``),
* token counters never decrease and halted agents are never enabled,
* at quiescence, settled positions are distinct and the terminal
  states match the algorithm's contract (halted vs suspended).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.analysis.verification import audit_configuration, verify_uniform_deployment
from repro.experiments.runner import ALGORITHMS, build_engine
from repro.ring.placement import Placement


class EngineStateMachine(RuleBasedStateMachine):
    """Drive one engine step by step under an arbitrary schedule."""

    @initialize(
        algorithm=st.sampled_from(sorted(ALGORITHMS)),
        ring_size=st.integers(min_value=4, max_value=9),
        data=st.data(),
    )
    def build(self, algorithm, ring_size, data):
        agent_count = data.draw(
            st.integers(min_value=1, max_value=min(4, ring_size)), label="k"
        )
        homes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=ring_size - 1),
                min_size=agent_count,
                max_size=agent_count,
                unique=True,
            ),
            label="homes",
        )
        self.algorithm = algorithm
        self.engine = build_engine(
            algorithm, Placement(ring_size=ring_size, homes=tuple(homes))
        )
        self.last_tokens = self.engine.ring.token_counts

    @precondition(lambda self: not self.engine.quiescent)
    @rule(pick=st.integers(min_value=0))
    def step_one_enabled_agent(self, pick):
        enabled = self.engine.enabled_agents()
        self.engine.step(enabled[pick % len(enabled)])

    @precondition(lambda self: self.engine.quiescent)
    @rule()
    def quiescence_is_stable(self):
        # A quiescent engine stays quiescent: no agent re-enables itself.
        steps = self.engine.steps
        assert self.engine.enabled_agents() == []
        assert self.engine.run_rounds(1).total_moves >= 0
        assert self.engine.steps == steps

    @invariant()
    def incremental_enabled_set_matches_oracle(self):
        self.engine.check_enabledness_invariant()

    @invariant()
    def configuration_is_structurally_sound(self):
        failures = audit_configuration(self.engine.snapshot())
        assert not failures, failures

    @invariant()
    def tokens_never_decrease(self):
        tokens = self.engine.ring.token_counts
        assert all(
            now >= was for was, now in zip(self.last_tokens, tokens)
        ), f"tokens decreased: {self.last_tokens} -> {tokens}"
        self.last_tokens = tokens

    @invariant()
    def halted_agents_are_never_enabled(self):
        enabled = set(self.engine.enabled_agents())
        for agent_id in self.engine.agent_ids:
            if self.engine.agent(agent_id).halted:
                assert agent_id not in enabled

    @invariant()
    def settled_positions_distinct_at_quiescence(self):
        if not self.engine.quiescent:
            return
        positions = list(self.engine.final_positions().values())
        assert len(set(positions)) == len(positions)
        _, halts, _ = ALGORITHMS[self.algorithm]
        report = verify_uniform_deployment(
            self.engine, require_halted=halts, require_suspended=not halts
        )
        assert report.ok, report.describe()


EngineStateMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=60, deadline=None
)
TestEngineStateMachine = EngineStateMachine.TestCase
