"""Deterministic replay: a recorded schedule reproduces the execution."""

from __future__ import annotations

import random

import pytest

from repro.experiments.runner import build_engine
from repro.ring.placement import Placement, random_placement
from repro.sim.scheduler import RandomScheduler, ReplayScheduler
from repro.sim.trace import TraceRecorder


def _events(trace: TraceRecorder):
    return [
        (event.kind, event.agent_id, event.node)
        for event in trace.events
    ]


@pytest.mark.parametrize("algorithm", ["known_k_full", "known_k_logspace", "unknown"])
def test_replay_reproduces_random_run(algorithm):
    placement = random_placement(20, 4, random.Random(77))

    original_trace = TraceRecorder()
    original = build_engine(
        algorithm, placement, scheduler=RandomScheduler(5), trace=original_trace
    )
    original.run()

    replay_trace = TraceRecorder()
    replay = build_engine(
        algorithm,
        placement,
        scheduler=ReplayScheduler(original.activation_log),
        trace=replay_trace,
    )
    replay.run()

    assert _events(replay_trace) == _events(original_trace)
    assert replay.final_positions() == original.final_positions()
    assert replay.metrics.total_moves == original.metrics.total_moves
    assert replay.activation_log == original.activation_log


def test_replay_fallback_after_log_exhaustion():
    placement = Placement(ring_size=10, homes=(0, 5))
    scheduler = ReplayScheduler([0])  # far too short for a full run
    engine = build_engine("known_k_full", placement, scheduler=scheduler)
    engine.run()  # must still finish via the fallback policy
    assert engine.quiescent
    assert scheduler.exhausted


def test_replay_skips_disabled_entries():
    scheduler = ReplayScheduler([9, 9, 1])
    assert scheduler.next_batch([1, 2]) == [1]  # 9 is skipped twice


def test_activation_log_grows_with_steps():
    placement = Placement(ring_size=8, homes=(0, 4))
    engine = build_engine("known_k_full", placement)
    engine.run_rounds(3)
    assert len(engine.activation_log) == engine.steps


class TestReplaySchedulerContract:
    """Pin the edge-case contract spelled out in the class docstring."""

    def test_empty_schedule_falls_back_immediately(self):
        scheduler = ReplayScheduler([])
        assert scheduler.exhausted
        assert scheduler.next_batch([3, 5, 8]) == [3]  # lowest-id fallback

    def test_empty_schedule_still_quiesces_a_run(self):
        placement = Placement(ring_size=8, homes=(0, 4))
        scheduler = ReplayScheduler([])
        engine = build_engine("known_k_full", placement, scheduler=scheduler)
        engine.run()
        assert engine.quiescent
        assert scheduler.exhausted

    def test_disabled_entries_skipped_permanently(self):
        # Each log entry is consumed at most once: a skipped entry does
        # not come back even when the named agent is enabled later.
        scheduler = ReplayScheduler([9, 1, 9, 2])
        assert scheduler.next_batch([1, 2]) == [1]  # 9 skipped
        assert scheduler.next_batch([2, 9]) == [9]  # second 9 still queued
        assert scheduler.next_batch([2, 9]) == [2]
        assert scheduler.exhausted
        # The first, skipped 9 never replays: fallback now rules.
        assert scheduler.next_batch([9]) == [9]

    def test_unknown_agent_ids_are_skipped_not_raised(self):
        scheduler = ReplayScheduler([42, -1, 2])
        assert scheduler.next_batch([2, 3]) == [2]
        assert scheduler.exhausted

    def test_exhaustion_flag_flips_exactly_at_end(self):
        scheduler = ReplayScheduler([1, 2])
        assert not scheduler.exhausted
        assert scheduler.next_batch([1, 2]) == [1]
        assert not scheduler.exhausted
        assert scheduler.next_batch([1, 2]) == [2]
        assert scheduler.exhausted

    def test_fallback_is_lowest_enabled_id(self):
        scheduler = ReplayScheduler([7])
        assert scheduler.next_batch([7]) == [7]
        assert scheduler.next_batch([5, 6]) == [5]
        assert scheduler.next_batch([6]) == [6]

    def test_describe_reports_log_length(self):
        assert ReplayScheduler([1, 2, 3]).describe() == "ReplayScheduler(len=3)"
