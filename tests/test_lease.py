"""Property tests for the campaign lease protocol (pure, fake-clock).

The lease layer is the part of the campaign machinery that must be
*right* rather than merely plausible: every fault-tolerance guarantee
reduces to "at most one live lease per unit" and "no unit is ever
lost".  Both classes are clock-injected and I/O-free precisely so
hypothesis can drive them through adversarial schedules here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.lease import (
    CACHED,
    COMPLETED,
    LEASED,
    PENDING,
    QUARANTINED,
    LeaseTable,
    UnitTracker,
    backoff_delay,
)
from repro.errors import ConfigurationError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# backoff_delay


class TestBackoffDelay:
    @given(st.text(min_size=1, max_size=40), st.integers(1, 40))
    def test_deterministic(self, key, attempt):
        assert backoff_delay(key, attempt) == backoff_delay(key, attempt)

    @given(st.text(min_size=1, max_size=40))
    def test_first_attempt_free(self, key):
        assert backoff_delay(key, 0) == 0.0
        assert backoff_delay(key, 1) == 0.0

    @given(st.text(min_size=1, max_size=40), st.integers(2, 60))
    def test_bounded_by_cap_plus_jitter(self, key, attempt):
        delay = backoff_delay(key, attempt, base=0.5, cap=30.0)
        assert 0.0 < delay < 30.0 + 0.5

    @given(st.text(min_size=1, max_size=40), st.integers(2, 20))
    def test_exponential_part_monotone(self, key, attempt):
        # The deterministic (pre-jitter) part never shrinks as attempts
        # mount; jitter adds strictly less than one base on top.
        base, cap = 0.5, 30.0
        floor = min(cap, base * 2.0 ** (attempt - 2))
        delay = backoff_delay(key, attempt, base=base, cap=cap)
        assert floor <= delay < floor + base
        next_floor = min(cap, base * 2.0 ** (attempt - 1))
        assert next_floor >= floor

    def test_distinct_units_get_distinct_jitter(self):
        delays = {backoff_delay(f"unit-{i}", 3) for i in range(32)}
        assert len(delays) > 16  # not all colliding on one offset


# ---------------------------------------------------------------------------
# LeaseTable


class TestLeaseTable:
    def table(self, clock, ttl=10.0, unit_timeout=60.0) -> LeaseTable:
        return LeaseTable(ttl=ttl, unit_timeout=unit_timeout, clock=clock)

    def test_double_issue_refused_while_live(self):
        clock = FakeClock()
        table = self.table(clock)
        table.issue("u", worker=0, attempt=1)
        with pytest.raises(ConfigurationError):
            table.issue("u", worker=1, attempt=1)

    def test_issue_allowed_after_expiry(self):
        clock = FakeClock()
        table = self.table(clock, ttl=5.0)
        table.issue("u", worker=0, attempt=1)
        clock.advance(5.0)
        lease = table.issue("u", worker=1, attempt=2)
        assert lease.worker == 1

    def test_renew_pushes_silence_deadline_only(self):
        clock = FakeClock()
        table = self.table(clock, ttl=5.0, unit_timeout=60.0)
        lease = table.issue("u", worker=0, attempt=1)
        clock.advance(4.0)
        assert table.renew("u", worker=0)
        assert lease.deadline == pytest.approx(9.0)
        assert lease.unit_deadline == pytest.approx(60.0)

    def test_renew_never_extends_past_unit_deadline(self):
        clock = FakeClock()
        table = self.table(clock, ttl=10.0, unit_timeout=12.0)
        lease = table.issue("u", worker=0, attempt=1)
        clock.advance(9.0)
        assert table.renew("u", worker=0)
        assert lease.deadline == pytest.approx(12.0)  # clamped
        clock.advance(3.0)
        assert lease.expired(clock.now)
        assert lease.expiry_cause(clock.now) == "unit-timeout"
        assert not table.renew("u", worker=0)  # cannot resurrect

    def test_stale_renew_and_release_rejected(self):
        clock = FakeClock()
        table = self.table(clock, ttl=5.0)
        table.issue("u", worker=0, attempt=1)
        assert not table.renew("u", worker=1)  # wrong holder
        assert not table.release("u", worker=1)
        clock.advance(5.0)
        assert not table.renew("u", worker=0)  # expired
        assert not table.release("u", worker=0)
        assert "u" in table  # only revoke/re-issue may clear it

    def test_release_by_live_holder(self):
        clock = FakeClock()
        table = self.table(clock)
        table.issue("u", worker=0, attempt=1)
        assert table.release("u", worker=0)
        assert "u" not in table

    def test_zombie_cannot_steal_reissued_unit(self):
        # Worker 0 crashes (lease expires), the unit re-issues to
        # worker 1; a late message from worker 0 must bounce off.
        clock = FakeClock()
        table = self.table(clock, ttl=5.0)
        table.issue("u", worker=0, attempt=1)
        clock.advance(5.0)
        table.revoke("u")
        table.issue("u", worker=1, attempt=2)
        assert not table.renew("u", worker=0)
        assert not table.release("u", worker=0)
        assert table.holder("u").worker == 1

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["advance", "renew", "release", "expire-check"]),
                st.integers(0, 2),
            ),
            max_size=40,
        )
    )
    def test_at_most_one_live_lease_under_arbitrary_schedules(self, events):
        """No interleaving of renew/release/time can double-lease a unit."""
        clock = FakeClock()
        table = self.table(clock, ttl=4.0, unit_timeout=20.0)
        holder = None  # our model of who legitimately owns "u"
        attempt = 0
        for action, worker in events:
            if action == "advance":
                clock.advance(2.5)
            elif action == "renew":
                renewed = table.renew("u", worker)
                if renewed:
                    assert worker == holder  # only the holder can renew
            elif action == "release":
                released = table.release("u", worker)
                if released:
                    assert worker == holder
                    holder = None
            elif action == "expire-check":
                for lease in table.expired():
                    table.revoke(lease.unit_key)
                    holder = None
            if holder is None and "u" not in table:
                attempt += 1
                table.issue("u", worker, attempt)
                holder = worker
            # The core invariant: the table never holds two leases for
            # one unit, and issuing over a live lease always raises.
            live = table.holder("u")
            if live is not None and not live.expired(clock.now):
                with pytest.raises(ConfigurationError):
                    table.issue("u", 99, attempt + 1)


# ---------------------------------------------------------------------------
# UnitTracker: no unit double-executed, no unit lost


@st.composite
def tracker_schedules(draw):
    """An arbitrary campaign history: per-step fate of the issued unit."""
    units = draw(st.integers(1, 6))
    fates = draw(
        st.lists(
            st.sampled_from(["complete", "kill", "stall", "silence"]),
            min_size=units,
            max_size=units * 8,
        )
    )
    max_retries = draw(st.integers(0, 4))
    cached = draw(st.sets(st.integers(0, units - 1), max_size=units))
    return units, fates, max_retries, cached


class TestUnitTrackerInvariants:
    @given(tracker_schedules())
    @settings(max_examples=200)
    def test_no_unit_lost_and_budget_respected(self, schedule):
        """Under arbitrary kill/stall/complete schedules every unit ends
        terminal, nothing executes beyond its retry budget, and no unit
        is ever issued while already leased."""
        units, fates, max_retries, cached = schedule
        keys = [f"unit-{i}" for i in range(units)]
        clock = FakeClock()
        tracker = UnitTracker(
            keys, max_retries=max_retries, backoff_base=1.0, clock=clock
        )
        for index in cached:
            tracker.on_cached(keys[index])

        causes = {"kill": "worker-death", "stall": "unit-timeout",
                  "silence": "heartbeat-silence"}
        for fate in fates:
            if tracker.done:
                break
            key = tracker.next_issuable()
            if key is None:  # all pending units behind backoff gates
                gate = tracker.next_available_at()
                if gate is None:
                    break
                clock.advance(gate - clock.now + 0.01)
                key = tracker.next_issuable()
                assert key is not None
            assert tracker.state(key) == PENDING
            tracker.on_issue(key)
            assert tracker.state(key) == LEASED
            # A leased unit can never be issued again before expiring.
            assert tracker.next_issuable() != key
            if fate == "complete":
                tracker.on_complete(key)
                assert tracker.state(key) == COMPLETED
            else:
                state = tracker.on_expire(key, causes[fate])
                assert state in (PENDING, QUARANTINED)
                assert tracker.attempts(key) <= max_retries + 1
                if tracker.attempts(key) == max_retries + 1:
                    assert state == QUARANTINED

        # Drain: keep expiring everything until the campaign terminates
        # (models a coordinator that never gives up short of quarantine).
        while not tracker.done:
            key = tracker.next_issuable()
            if key is None:
                gate = tracker.next_available_at()
                assert gate is not None, "non-terminal unit with no path forward"
                clock.advance(gate - clock.now + 0.01)
                continue
            tracker.on_issue(key)
            tracker.on_expire(key, "worker-death")

        counts = tracker.counts()
        assert (
            counts[COMPLETED] + counts[QUARANTINED] + counts[CACHED] == units
        ), "a unit was lost"
        assert counts[PENDING] == 0 and counts[LEASED] == 0
        for key in keys:
            # Attempts never exceed the budget: first try + max_retries.
            assert tracker.attempts(key) <= max_retries + 1
            report = tracker.report(key)
            assert report["state"] in (COMPLETED, QUARANTINED, CACHED)

    @given(st.integers(0, 3))
    def test_quarantine_exactly_after_budget(self, max_retries):
        clock = FakeClock()
        tracker = UnitTracker(
            ["u"], max_retries=max_retries, backoff_base=0.5, clock=clock
        )
        for attempt in range(1, max_retries + 2):
            clock.advance(1000.0)  # clear any backoff gate
            assert tracker.next_issuable() == "u"
            assert tracker.on_issue("u") == attempt
            state = tracker.on_expire("u", "worker-death")
            expected = QUARANTINED if attempt == max_retries + 1 else PENDING
            assert state == expected
        assert tracker.counts()["reissues"] == max_retries

    def test_invalid_transitions_raise(self):
        tracker = UnitTracker(["u"], max_retries=1, clock=FakeClock())
        with pytest.raises(ConfigurationError):
            tracker.on_complete("u")  # not leased
        with pytest.raises(ConfigurationError):
            tracker.on_expire("u", "worker-death")
        tracker.on_issue("u")
        with pytest.raises(ConfigurationError):
            tracker.on_issue("u")  # already leased
        with pytest.raises(ConfigurationError):
            tracker.on_cached("u")
        tracker.on_complete("u")
        with pytest.raises(ConfigurationError):
            tracker.on_complete("u")

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            UnitTracker(["u", "u"], max_retries=1)
