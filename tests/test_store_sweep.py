"""Store-backed sweep orchestration: concurrency, checkpointing, resume.

The acceptance contract: re-running a completed sweep with resume
executes zero cells while producing byte-identical rows, and a sweep
killed mid-flight resumes losslessly — the final store equals the one a
clean serial run produces.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.experiments.sweep import (
    SweepSpec,
    cell_row,
    execute_sweep,
    expand_cells,
    rows_from_store,
    run_sweep,
    summarize_rows,
)
from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiment
from repro.spec import ExperimentSpec, PlacementSpec
from repro.store import RunStore

SPEC = SweepSpec(
    algorithms=("known_k_full", "unknown"),
    grid=((20, 4), (24, 4)),
    schedulers=("sync", "random"),
    trials=2,
    base_seed=17,
)  # 16 cells


@pytest.fixture(scope="module")
def baseline_rows():
    """Rows of a clean, storeless serial run (the ground truth)."""
    return run_sweep(SPEC, processes=1)


def _write_one(task):
    """Top-level pool worker: archive one spec into a shared store dir."""
    root, seed = task
    spec = ExperimentSpec(
        algorithm="known_k_full",
        placement=PlacementSpec(
            kind="random", ring_size=16, agent_count=3, seed=seed
        ),
    )
    store = RunStore(root)
    store.put(run_experiment(spec).to_record(spec))
    return spec.content_hash()


class TestConcurrentWrites:
    def test_parallel_pool_writes_no_torn_or_duplicate_records(
        self, tmp_path, baseline_rows
    ):
        root = tmp_path / "store"
        store = RunStore(root)
        outcome = execute_sweep(SPEC, processes=4, store=store)
        assert outcome.executed == len(expand_cells(SPEC))
        assert outcome.rows == baseline_rows
        # Every shard line parses, and hashes are unique across lines.
        lines = []
        for shard in sorted(root.glob("shard-*.jsonl")):
            raw = shard.read_bytes()
            assert raw.endswith(b"\n"), "torn final record"
            lines.extend(raw.decode("utf-8").splitlines())
        hashes = [json.loads(line)["content_hash"] for line in lines]
        assert len(hashes) == len(set(hashes)) == len(expand_cells(SPEC))
        assert sorted(hashes) == sorted(RunStore(root).hashes())

    def test_many_processes_one_store_directory(self, tmp_path):
        # Independent writer *processes* (not pool workers returning to a
        # single writing parent): each opens the store itself and appends
        # to its own pid shard.
        root = tmp_path / "store"
        tasks = [(str(root), seed) for seed in range(12)]
        with multiprocessing.Pool(4) as pool:
            hashes = pool.map(_write_one, tasks)
        assert len(set(hashes)) == 12
        store = RunStore(root)
        assert len(store) == 12
        assert sorted(store.hashes()) == sorted(hashes)
        for record in store.iter_records():
            assert record.result["report"]["ok"] is True


class TestResume:
    def test_completed_sweep_resumes_with_zero_executions(
        self, tmp_path, baseline_rows
    ):
        store = RunStore(tmp_path / "store")
        first = execute_sweep(SPEC, processes=2, store=store)
        second = execute_sweep(SPEC, processes=2, store=store)
        assert first.executed == len(expand_cells(SPEC)) and first.cached == 0
        assert second.executed == 0
        assert second.cached == len(expand_cells(SPEC))
        # Byte-identical rows: cached and computed paths shape rows
        # through the same helper.
        assert json.dumps(second.rows) == json.dumps(baseline_rows)

    def test_partial_store_executes_only_missing_cells(
        self, tmp_path, baseline_rows
    ):
        cells = expand_cells(SPEC)
        prefilled = RunStore(tmp_path / "store")
        for cell in cells[::2]:  # archive every other cell
            spec = cell.to_experiment_spec()
            prefilled.put(run_experiment(spec).to_record(spec))
        outcome = execute_sweep(SPEC, processes=2, store=prefilled)
        assert outcome.cached == len(cells[::2])
        assert outcome.executed == len(cells) - len(cells[::2])
        assert outcome.rows == baseline_rows

    def test_killed_sweep_resumes_losslessly(self, tmp_path, baseline_rows):
        root = tmp_path / "store"
        store = RunStore(root)

        class Killed(Exception):
            pass

        def kill_after_five(done, _total):
            if done >= 5:
                raise Killed

        with pytest.raises(Killed):
            execute_sweep(SPEC, processes=1, store=store, progress=kill_after_five)
        checkpoint = RunStore(root)
        archived = len(checkpoint)
        assert 5 <= archived < len(expand_cells(SPEC))

        resumed = execute_sweep(SPEC, processes=2, store=checkpoint)
        assert resumed.cached == archived
        assert resumed.executed == len(expand_cells(SPEC)) - archived
        assert resumed.rows == baseline_rows

        # Final store equals the one a clean serial run produces.
        clean = RunStore(tmp_path / "clean")
        execute_sweep(SPEC, processes=1, store=clean)
        assert sorted(checkpoint.hashes()) == sorted(clean.hashes())
        by_hash = {r.content_hash: r.result for r in checkpoint.iter_records()}
        for record in clean.iter_records():
            assert by_hash[record.content_hash] == record.result

    def test_no_resume_recomputes_everything(self, tmp_path):
        store = RunStore(tmp_path / "store")
        execute_sweep(SPEC, processes=2, store=store)
        outcome = execute_sweep(SPEC, processes=2, store=store, resume=False)
        assert outcome.executed == len(expand_cells(SPEC))
        assert outcome.cached == 0
        assert len(store) == len(expand_cells(SPEC))  # still content-addressed

    def test_no_resume_refreshes_stale_archived_records(self, tmp_path):
        # A --no-resume run recomputes on purpose (say, after a
        # simulation fix); the archive must end up agreeing with the
        # rows the run printed, not keep serving pre-fix numbers.
        from repro.store import RunRecord

        store = RunStore(tmp_path / "store")
        execute_sweep(SPEC, processes=1, store=store)
        victim_hash = store.hashes()[0]
        genuine = store.get(victim_hash)
        store.put(
            RunRecord(
                content_hash=victim_hash,
                result=dict(genuine.result, total_moves=-1),
                spec=genuine.spec,
            ),
            replace=True,
        )
        assert store.get(victim_hash).result["total_moves"] == -1
        execute_sweep(SPEC, processes=1, store=store, resume=False)
        assert store.get(victim_hash).result == genuine.result
        assert RunStore(tmp_path / "store").get(victim_hash).result == genuine.result

    def test_overlapping_sweep_pays_only_new_cells(self, tmp_path):
        store = RunStore(tmp_path / "store")
        execute_sweep(SPEC, processes=2, store=store)
        widened = SweepSpec(
            algorithms=SPEC.algorithms,
            grid=SPEC.grid + ((28, 4),),
            schedulers=SPEC.schedulers,
            trials=SPEC.trials,
            base_seed=SPEC.base_seed,
        )
        outcome = execute_sweep(widened, processes=2, store=store)
        new_cells = len(expand_cells(widened)) - len(expand_cells(SPEC))
        assert outcome.cached == len(expand_cells(SPEC))
        assert outcome.executed == new_cells


class TestStoreQueriesOverRows:
    def test_rows_from_store_matches_live_sweep(self, tmp_path, baseline_rows):
        store = RunStore(tmp_path / "store")
        execute_sweep(SPEC, processes=2, store=store)
        assert rows_from_store(store, SPEC) == baseline_rows
        assert summarize_rows(rows_from_store(store, SPEC)) == summarize_rows(
            baseline_rows
        )

    def test_rows_from_store_strict_names_missing_cells(self, tmp_path):
        store = RunStore(tmp_path / "store")
        assert rows_from_store(store, SPEC) == []
        with pytest.raises(ConfigurationError, match="missing 16"):
            rows_from_store(store, SPEC, strict=True)

    def test_cell_row_is_the_single_row_shape(self, baseline_rows):
        cells = expand_cells(SPEC)
        rebuilt = cell_row(cells[0], run_experiment(cells[0].to_experiment_spec()))
        assert rebuilt == baseline_rows[0]


class TestCliStoreCommands:
    def test_run_store_hits_on_second_invocation(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "store")
        flags = ["run", "--n", "20", "--k", "4", "--store", root]
        assert main(flags) == 0
        first = capsys.readouterr().out
        assert "archived run" in first
        assert main(flags) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second and "0 simulations executed" in second
        # The rendered result row is identical either way.
        assert first.splitlines()[-1] == second.splitlines()[-1]

    def test_psweep_store_resume_reports_full_cache(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "store")
        flags = [
            "psweep", "--algorithms", "known_k_full", "--grid", "20x4",
            "--schedulers", "sync,random", "--trials", "2",
            "--jobs", "2", "--store", root,
        ]
        assert main(flags) == 0
        assert "store: 4 executed, 0 cached" in capsys.readouterr().out
        assert main(flags) == 0
        assert "store: 0 executed, 4 cached" in capsys.readouterr().out

    def test_query_filters_and_json(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "store")
        assert main([
            "psweep", "--algorithms", "known_k_full,unknown",
            "--grid", "20x4", "--schedulers", "sync", "--store", root,
        ]) == 0
        capsys.readouterr()
        assert main(["query", "--store", root, "--algorithm", "unknown"]) == 0
        output = capsys.readouterr().out
        assert "unknown" in output and "1 of 2 archived runs matched" in output
        assert main(["query", "--store", root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        assert all(record["schema_version"] == 1 for record in payload)

    def test_query_missing_store_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["query", "--store", str(tmp_path / "absent")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


class TestStoreBackedAggregation:
    def test_aggregate_trials_store_round_trip(self, tmp_path):
        from repro.experiments.statistics import aggregate_trials

        store = RunStore(tmp_path / "store")
        cold = aggregate_trials(
            "known_k_full", 20, 4, trials=3, seed=5, store=store
        )
        assert len(store) == 3
        warm = aggregate_trials(
            "known_k_full", 20, 4, trials=3, seed=5, store=store
        )
        assert len(store) == 3  # nothing new simulated
        assert warm.total_moves == cold.total_moves
        assert warm.results == cold.results
        plain = aggregate_trials("known_k_full", 20, 4, trials=3, seed=5)
        assert plain.total_moves == cold.total_moves

    def test_aggregate_trials_factory_cannot_be_archived(self, tmp_path):
        from repro.experiments.statistics import aggregate_trials
        from repro.sim.scheduler import RandomScheduler

        with pytest.raises(ConfigurationError, match="content-addressed"):
            aggregate_trials(
                "known_k_full", 20, 4, trials=2,
                scheduler_factory=lambda i: RandomScheduler(i),
                store=RunStore(tmp_path / "store"),
            )

    def test_aggregate_trials_scheduler_spec_samples_async(self):
        from repro.experiments.statistics import aggregate_trials

        aggregate = aggregate_trials(
            "known_k_full", 20, 4, trials=2, scheduler_spec="random"
        )
        assert aggregate.all_uniform
        assert aggregate.ideal_time is None  # async runs do not report time

    def test_table1_sweep_store(self, tmp_path):
        from repro.experiments.table1 import table1_sweep

        store = RunStore(tmp_path / "store")
        cold = table1_sweep("known_k_full", [(20, 4), (24, 4)], seed=3, store=store)
        warm = table1_sweep("known_k_full", [(20, 4), (24, 4)], seed=3, store=store)
        assert warm == cold
        assert len(store) == 2


class TestStoreBackedReport:
    def test_report_from_store_matches_fresh_report(self, tmp_path):
        from repro.experiments.report import generate_report

        store = RunStore(tmp_path / "store")
        fresh = generate_report("quick")
        archived = generate_report("quick", store=store)
        assert archived == fresh
        records_after_first = len(store)
        assert records_after_first > 0
        warm = generate_report("quick", store=store)
        assert warm == fresh
        assert len(store) == records_after_first  # nothing re-archived
