"""The packed canonical encoding: injective, symmetric, old-key-compatible.

The model checker's memo table moved from ``repr``-tuple canonical forms
to packed bytes hashed with blake2b
(:meth:`~repro.ring.configuration.Configuration.packed_layout`).  These
tests pin the contract from three sides:

* **Hypothesis invariance** — both the old ``canonical()`` and the new
  ``packed()``/``canonical_key()`` encodings are invariant under a
  random ring rotation composed with a random agent relabelling, and
  both distinguish a mutated configuration from its original.
* **Partition differential** — on breadth-first walks of real engine
  state spaces, the new key partitions states *identically* to the old
  one (no splits, no merges); the mc-marked variant covers the full
  PR-2 verification grid.
* **Slot layout** — ``packed_layout`` enumerates every agent exactly
  once, in a relabelling-stable order (the POR sleep sets depend on it).
"""

from __future__ import annotations

from collections import deque

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.runner import ALGORITHMS, build_engine
from repro.ring.configuration import Configuration, pack_value
from repro.ring.placement import Placement


# ----------------------------------------------------------------------
# Random configurations (pure data: no engine invariants required)
# ----------------------------------------------------------------------

_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-3, 40),
    st.sampled_from(["seek", "settle", "probe", ""]),
)
_PAYLOADS = st.tuples(_SCALARS, _SCALARS, _SCALARS)


@st.composite
def configurations(draw):
    ring_size = draw(st.integers(min_value=3, max_value=8))
    agent_count = draw(st.integers(min_value=1, max_value=4))
    locations = draw(
        st.lists(
            st.tuples(st.integers(0, ring_size - 1), st.booleans()),
            min_size=agent_count,
            max_size=agent_count,
        )
    )
    staying = {node: [] for node in range(ring_size)}
    queues = {node: [] for node in range(ring_size)}
    for agent_id, (node, stays) in enumerate(locations):
        (staying if stays else queues)[node].append(agent_id)
    agent_states = {
        agent_id: draw(_PAYLOADS) for agent_id in range(agent_count)
    }
    inboxes = {
        agent_id: tuple(draw(st.lists(_SCALARS, max_size=2)))
        for agent_id in range(agent_count)
    }
    started = {
        agent_id: draw(st.booleans()) for agent_id in range(agent_count)
    }
    tokens = tuple(
        draw(st.integers(0, 2)) for _ in range(ring_size)
    )
    return Configuration(
        ring_size=ring_size,
        agent_states=agent_states,
        tokens=tokens,
        inbox_sizes={a: len(inboxes[a]) for a in inboxes},
        staying={n: tuple(sorted(a)) for n, a in staying.items()},
        queues={n: tuple(a) for n, a in queues.items()},
        inboxes=inboxes,
        started=started,
    )


def _transform(config: Configuration, shift: int, perm: dict) -> Configuration:
    """Rotate the ring by ``shift`` and relabel agents by ``perm``."""
    n = config.ring_size
    return Configuration(
        ring_size=n,
        agent_states={perm[a]: s for a, s in config.agent_states.items()},
        tokens=tuple(config.tokens[(node - shift) % n] for node in range(n)),
        inbox_sizes={perm[a]: v for a, v in config.inbox_sizes.items()},
        staying={
            (node + shift) % n: tuple(sorted(perm[a] for a in agents))
            for node, agents in config.staying.items()
        },
        queues={
            (node + shift) % n: tuple(perm[a] for a in agents)
            for node, agents in config.queues.items()
        },
        inboxes={perm[a]: v for a, v in config.inboxes.items()},
        started={perm[a]: v for a, v in config.started.items()},
    )


@given(config=configurations(), data=st.data())
@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_both_encodings_invariant_under_rotation_and_relabelling(config, data):
    n = config.ring_size
    agents = sorted(config.agent_states)
    shift = data.draw(st.integers(0, n - 1), label="shift")
    perm_values = data.draw(st.permutations(agents), label="perm")
    perm = dict(zip(agents, perm_values))
    other = _transform(config, shift, perm)
    assert config.canonical() == other.canonical()
    assert config.packed() == other.packed()
    assert config.canonical_key() == other.canonical_key()


@given(config=configurations(), data=st.data())
@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_both_encodings_distinguish_mutations(config, data):
    n = config.ring_size
    agents = sorted(config.agent_states)
    mutation = data.draw(
        st.sampled_from(["token", "started", "inbox"]), label="mutation"
    )
    if mutation == "token":
        node = data.draw(st.integers(0, n - 1), label="node")
        tokens = list(config.tokens)
        tokens[node] += 1  # total token count changes: no orbit aliasing
        mutated = Configuration(
            ring_size=n,
            agent_states=config.agent_states,
            tokens=tuple(tokens),
            inbox_sizes=config.inbox_sizes,
            staying=config.staying,
            queues=config.queues,
            inboxes=config.inboxes,
            started=config.started,
        )
    elif mutation == "started":
        agent = data.draw(st.sampled_from(agents), label="agent")
        started = dict(config.started)
        started[agent] = not started[agent]
        # Flipping one flag changes the global started count, which no
        # rotation/relabelling can restore.
        mutated = Configuration(
            ring_size=n,
            agent_states=config.agent_states,
            tokens=config.tokens,
            inbox_sizes=config.inbox_sizes,
            staying=config.staying,
            queues=config.queues,
            inboxes=config.inboxes,
            started=started,
        )
    else:
        agent = data.draw(st.sampled_from(agents), label="agent")
        inboxes = {a: tuple(v) for a, v in config.inboxes.items()}
        inboxes[agent] = inboxes[agent] + ("mutated-message",)
        mutated = Configuration(
            ring_size=n,
            agent_states=config.agent_states,
            tokens=config.tokens,
            inbox_sizes={a: len(v) for a, v in inboxes.items()},
            staying=config.staying,
            queues=config.queues,
            inboxes=inboxes,
            started=config.started,
        )
    assert config.canonical() != mutated.canonical()
    assert config.packed() != mutated.packed()
    assert config.canonical_key() != mutated.canonical_key()


# ----------------------------------------------------------------------
# pack_value: injective, self-delimiting
# ----------------------------------------------------------------------

def _packed_bytes(value) -> bytes:
    out = bytearray()
    pack_value(value, out)
    return bytes(out)


def test_pack_value_separates_confusable_values():
    # Values whose reprs or str-forms could collide must pack apart.
    confusable = [
        None,
        True,
        False,
        0,
        1,
        -1,
        12,
        (1, 2),
        ((1,), 2),
        (1, (2,)),
        ("1", 2),
        "12",
        b"12",
        "",
        (),
        ("",),
        ((),),
    ]
    packed = [_packed_bytes(v) for v in confusable]
    assert len(set(packed)) == len(confusable)


def test_pack_value_concatenation_unambiguous():
    # (a, b) vs (a', b') with a+b == a'+b' as strings must still differ.
    assert _packed_bytes(("ab", "c")) != _packed_bytes(("a", "bc"))
    assert _packed_bytes((1, 23)) != _packed_bytes((12, 3))


# ----------------------------------------------------------------------
# Partition differential against the old canonical key
# ----------------------------------------------------------------------

def _walk_and_compare(algorithm: str, placement: Placement, limit: int) -> int:
    """BFS the real state space; assert old/new keys partition alike."""
    root = build_engine(
        algorithm, placement, collect_metrics=False, record_views=True
    )
    frontier = deque([root])
    new_by_old: dict = {}
    old_by_new: dict = {}
    seen = set()
    states = 0
    while frontier and states < limit:
        engine = frontier.popleft()
        snapshot = engine.snapshot()
        states += 1
        old_key = repr(snapshot.canonical())
        new_key = snapshot.canonical_key()
        if old_key in new_by_old:
            assert new_by_old[old_key] == new_key, "old-equal states split"
        else:
            new_by_old[old_key] = new_key
        if new_key in old_by_new:
            assert old_by_new[new_key] == old_key, "old-distinct states merged"
        else:
            old_by_new[new_key] = old_key
        if new_key in seen:
            continue
        seen.add(new_key)
        for agent_id in engine.enabled_agents():
            child = engine.fork()
            child.step(agent_id)
            frontier.append(child)
    return len(seen)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_packed_key_partitions_like_canonical_small(algorithm):
    distinct = _walk_and_compare(algorithm, Placement(6, homes=(0, 2)), limit=600)
    assert distinct > 10


@pytest.mark.mc
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("n,k", [(6, 2), (6, 3), (8, 2)])
def test_packed_key_partitions_like_canonical_grid(algorithm, n, k):
    from repro.mc import all_placements

    for placement in all_placements(n, k, dedupe_rotations=False):
        _walk_and_compare(algorithm, placement, limit=100_000)


# ----------------------------------------------------------------------
# Slot layout
# ----------------------------------------------------------------------

def test_packed_layout_enumerates_each_agent_once():
    engine = build_engine(
        "unknown", Placement(8, homes=(0, 3, 5)), record_views=True
    )
    for _ in range(12):
        engine.step(engine.enabled_agents()[0])
        snapshot = engine.snapshot()
        packed, slots = snapshot.packed_layout()
        assert sorted(slots) == sorted(snapshot.agent_states)
        assert snapshot.packed() is packed  # cached on the frozen instance


def test_packed_layout_slots_relabelling_stable():
    # The slot an agent occupies is a function of the anonymous state:
    # relabelled copies put the corresponding agents at the same slots.
    placement = Placement(6, homes=(0, 2))
    first = build_engine("known_k_full", placement, record_views=True)
    second = build_engine("known_k_full", placement, record_views=True)
    for engine in (first, second):
        for _ in range(5):
            engine.step(engine.enabled_agents()[0])
    a = first.snapshot()
    b = second.snapshot()
    assert a.packed() == b.packed()
    layout_a = a.packed_layout()[1]
    layout_b = b.packed_layout()[1]
    payload_a = [a._agent_payload(agent) for agent in layout_a]
    payload_b = [b._agent_payload(agent) for agent in layout_b]
    assert payload_a == payload_b
