"""Unit tests for Action validation and the Agent base class."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolViolation, SimulationError
from repro.sim.actions import Action, Move, NodeView
from repro.sim.agent import Agent


class TestAction:
    def test_defaults(self):
        action = Action()
        assert action.move is Move.STAY
        assert not action.release_token
        assert action.broadcast is None

    def test_constructors(self):
        assert Action.move_forward().move is Move.FORWARD
        assert Action.stay().move is Move.STAY
        assert Action.halt_here().halt
        assert Action.suspend_here().suspend

    def test_move_and_halt_rejected(self):
        with pytest.raises(ProtocolViolation):
            Action(move=Move.FORWARD, halt=True)

    def test_move_and_suspend_rejected(self):
        with pytest.raises(ProtocolViolation):
            Action(move=Move.FORWARD, suspend=True)

    def test_halt_and_suspend_rejected(self):
        with pytest.raises(ProtocolViolation):
            Action(halt=True, suspend=True)

    def test_broadcast_payload_carried(self):
        action = Action.move_forward(broadcast={"x": 1})
        assert action.broadcast == {"x": 1}


class _Walker(Agent):
    """Walk ``steps`` hops, optionally releasing a token first, then halt."""

    def __init__(self, steps: int) -> None:
        super().__init__()
        self.steps = steps
        self.done = None
        self.declare("steps", "done")

    def protocol(self, first_view):
        for _ in range(self.steps):
            yield Action.move_forward()
        self.done = True
        yield Action.halt_here()


class _BadFinisher(Agent):
    """Finishes its generator without halting — a protocol violation."""

    def protocol(self, first_view):
        yield Action.move_forward()
        # generator returns without halt/suspend


class TestAgentLifecycle:
    def test_start_then_act(self):
        agent = _Walker(2)
        view = NodeView(tokens=0, agents_present=0)
        action = agent.start(view)
        assert action.move is Move.FORWARD
        action = agent.act(view)
        assert action.move is Move.FORWARD
        action = agent.act(view)
        assert action.halt
        assert agent.halted

    def test_double_start_rejected(self):
        agent = _Walker(1)
        view = NodeView(tokens=0, agents_present=0)
        agent.start(view)
        with pytest.raises(SimulationError):
            agent.start(view)

    def test_act_before_start_rejected(self):
        agent = _Walker(1)
        with pytest.raises(SimulationError):
            agent.act(NodeView(tokens=0, agents_present=0))

    def test_act_after_halt_rejected(self):
        agent = _Walker(0)
        view = NodeView(tokens=0, agents_present=0)
        action = agent.start(view)
        assert action.halt
        with pytest.raises(SimulationError):
            agent.act(view)

    def test_generator_return_without_halt_is_violation(self):
        agent = _BadFinisher()
        view = NodeView(tokens=0, agents_present=0)
        agent.start(view)
        with pytest.raises(ProtocolViolation):
            agent.act(view)

    def test_non_action_yield_is_violation(self):
        class Bad(Agent):
            def protocol(self, first_view):
                yield "not an action"

        with pytest.raises(ProtocolViolation):
            Bad().start(NodeView(tokens=0, agents_present=0))

    def test_suspend_flag_cleared_on_next_act(self):
        class Suspender(Agent):
            def protocol(self, first_view):
                yield Action.suspend_here()
                yield Action.halt_here()

        agent = Suspender()
        view = NodeView(tokens=0, agents_present=0)
        agent.start(view)
        assert agent.suspended
        agent.act(view)
        assert not agent.suspended
        assert agent.halted


class TestMemoryAccounting:
    def test_scalar_bits(self):
        agent = _Walker(0)
        agent.steps = 0
        assert agent.memory_bits() >= 2  # steps + done

    def test_unset_costs_one_bit(self):
        agent = _Walker(3)
        base = agent.memory_bits()
        agent.done = True
        assert agent.memory_bits() == base  # bool costs 1 bit, same as None

    def test_bits_grow_with_value(self):
        agent = _Walker(1)
        small = agent.memory_bits()
        agent.steps = 10**6
        assert agent.memory_bits() > small

    def test_sequence_bits(self):
        class WithSeq(Agent):
            def __init__(self):
                super().__init__()
                self.D = None
                self.declare_sequence("D")

            def protocol(self, first_view):
                yield Action.halt_here()

        agent = WithSeq()
        empty = agent.memory_bits()
        agent.D = [3, 3, 3, 3]
        four = agent.memory_bits()
        agent.D = [3] * 8
        eight = agent.memory_bits()
        assert empty < four < eight
        assert eight == 2 * four  # width fixed, length doubled

    def test_non_integer_scalar_rejected(self):
        agent = _Walker(1)
        agent.steps = "oops"
        with pytest.raises(SimulationError):
            agent.memory_bits()

    def test_fingerprint_reflects_state(self):
        first = _Walker(2)
        second = _Walker(2)
        assert first.state_fingerprint() == second.state_fingerprint()
        second.steps = 5
        assert first.state_fingerprint() != second.state_fingerprint()
