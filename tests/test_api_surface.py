"""API-surface quality gates: exports resolve, public items are documented."""

from __future__ import annotations

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.analysis",
    "repro.analysis.chart",
    "repro.analysis.complexity",
    "repro.analysis.coverage",
    "repro.analysis.invariants",
    "repro.analysis.render",
    "repro.analysis.sequences",
    "repro.analysis.timeline",
    "repro.analysis.verification",
    "repro.baselines",
    "repro.baselines.optimal",
    "repro.baselines.rendezvous",
    "repro.cli",
    "repro.core",
    "repro.core.known_k_full",
    "repro.core.known_k_logspace",
    "repro.core.known_n_full",
    "repro.core.messages",
    "repro.core.targets",
    "repro.core.unknown",
    "repro.embedding",
    "repro.embedding.deploy",
    "repro.embedding.general",
    "repro.embedding.tree",
    "repro.errors",
    "repro.registry",
    "repro.spec",
    "repro.mc",
    "repro.mc.checker",
    "repro.mc.properties",
    "repro.mc.selftest",
    "repro.mc.state",
    "repro.experiments",
    "repro.experiments.comparison",
    "repro.experiments.figures",
    "repro.experiments.impossibility",
    "repro.experiments.lower_bound",
    "repro.experiments.report",
    "repro.experiments.runner",
    "repro.experiments.serialize",
    "repro.experiments.statistics",
    "repro.experiments.sweep",
    "repro.experiments.table1",
    "repro.ring",
    "repro.ring.configuration",
    "repro.ring.network",
    "repro.ring.placement",
    "repro.sim",
    "repro.sim.actions",
    "repro.sim.agent",
    "repro.sim.engine",
    "repro.sim.metrics",
    "repro.sim.scheduler",
    "repro.sim.trace",
    "repro.store",
    "repro.store.cache",
    "repro.store.jsonl",
    "repro.store.records",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_are_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    undocumented = []
    for name in exported:
        obj = getattr(module, name)
        if obj.__module__ != module_name if hasattr(obj, "__module__") else True:
            continue  # re-export: documented at its home module
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, (
        f"{module_name}: public items without docstrings: {undocumented}"
    )


def test_version_attribute():
    import repro

    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(part.isdigit() for part in parts)


def test_top_level_star_import_is_clean():
    namespace = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate
    assert "run_experiment" in namespace
    assert "Placement" in namespace
