"""Unit and property tests for the §3.1.1 target arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.verification import verify_positions
from repro.core.targets import (
    hop_to_next_target,
    segment_offsets,
    target_offset,
    uniform_targets,
)
from repro.errors import ConfigurationError


class TestTargetOffset:
    def test_exact_division(self):
        # n = 16, k = 4, b = 1: offsets 0, 4, 8, 12.
        assert segment_offsets(16, 4, 1) == [0, 4, 8, 12]

    def test_remainder_spread_first(self):
        # n = 10, k = 4: floor = 2, r = 2; first two gaps are 3.
        assert segment_offsets(10, 4, 1) == [0, 3, 6, 8]

    def test_multiple_bases(self):
        # n = 18, k = 9, b = 3 (the Figure 5 layout): 3 targets per
        # segment of length 6, gaps of 2.
        assert segment_offsets(18, 9, 3) == [0, 2, 4]

    def test_multiple_bases_with_remainder(self):
        # n = 22, k = 8, b = 2: r = 6, r/b = 3, floor = 2.
        # Segment length 11; offsets 0,3,6,9 then gaps 2 for the rest.
        assert segment_offsets(22, 8, 2) == [0, 3, 6, 9]

    def test_rank_zero_is_base(self):
        assert target_offset(0, 12, 4, 1) == 0

    def test_rank_out_of_range(self):
        with pytest.raises(ConfigurationError):
            target_offset(4, 16, 4, 1)
        with pytest.raises(ConfigurationError):
            target_offset(-1, 16, 4, 1)

    def test_base_count_must_divide_k(self):
        with pytest.raises(ConfigurationError):
            target_offset(0, 16, 4, 3)

    def test_base_count_must_divide_remainder(self):
        # n = 10, k = 4, b = 2: r = 2, divisible; n = 11 -> r = 3, not.
        segment_offsets(10, 4, 2)
        with pytest.raises(ConfigurationError):
            segment_offsets(11, 4, 2)

    def test_positive_arguments_required(self):
        with pytest.raises(ConfigurationError):
            target_offset(0, 0, 4, 1)


class TestHops:
    def test_hops_cycle_through_segment(self):
        index = 0
        total = 0
        for _ in range(4):  # one full segment: k/b = 4 targets
            step, index = hop_to_next_target(index, 16, 4, 1)
            total += step
        assert index == 0
        assert total == 16  # wrapped exactly one segment (= ring, b = 1)

    def test_hops_with_remainder(self):
        # n = 10, k = 4: gaps 3, 3, 2, 2.
        steps = []
        index = 0
        for _ in range(4):
            step, index = hop_to_next_target(index, 10, 4, 1)
            steps.append(step)
        assert steps == [3, 3, 2, 2]

    def test_hop_index_validation(self):
        with pytest.raises(ConfigurationError):
            hop_to_next_target(4, 16, 4, 1)


class TestUniformTargets:
    def test_targets_form_uniform_configuration(self):
        targets = uniform_targets(5, 18, 9, 3)
        assert len(targets) == 9
        assert verify_positions(targets, 18).ok

    @given(
        st.integers(2, 12),
        st.integers(1, 6),
        st.integers(0, 30),
        st.integers(1, 3),
    )
    def test_property_uniform_for_valid_bases(self, k, c, base_node, b):
        # Build n so that b divides both k and n mod k.
        if k % b != 0:
            k = k * b
        n = c * k + b * (k // b // 2 if k // b > 1 else 0)
        if n < k:
            n = k
        remainder = n % k
        if remainder % b != 0:
            n += b - (remainder % b) * 0  # keep n; skip invalid combos
            if (n % k) % b != 0:
                return
        targets = uniform_targets(base_node % n, n, k, b)
        assert len(targets) == k
        assert verify_positions(targets, n).ok

    @given(st.integers(2, 10), st.integers(1, 5))
    def test_offsets_monotone_and_bounded(self, k, c):
        n = c * k + (k // 2)
        offsets = segment_offsets(n, k, 1)
        assert offsets[0] == 0
        assert all(b > a for a, b in zip(offsets, offsets[1:]))
        assert offsets[-1] < n
