"""The sleep-set partial-order reduction is sound and actually reduces.

Soundness here is *total*: sleep sets prune transitions, never states,
so the reduced search must agree with full expansion on every
observable — verdict, explored-state count, terminal-state key set and
violation reachability.  The differential gate below enforces exactly
that, cell by cell, on the full PR-2 verification grid (mc-marked) and
on fast small instances (tier-1).  A reduction that merely "usually
agrees" would silently weaken the repo's exhaustiveness claims, which
is why the comparison is on canonical state keys, not just counts.
"""

from __future__ import annotations

import pytest

from repro.mc import (
    check_frontier,
    check_interleavings,
    conflict,
    exhaust_placements,
    replay_counterexample,
    sleep_after,
)
from repro.mc.por import action_node, agents_of_slots, slots_of_agents
from repro.mc.selftest import wake_race_agents
from repro.experiments.runner import ALGORITHMS, build_engine
from repro.ring.placement import Placement
from repro.sim.actions import Action
from repro.sim.agent import Agent

BUG_PLACEMENT = Placement(ring_size=8, homes=(0, 1, 3))
BUG_K = 3


# ----------------------------------------------------------------------
# Unit level: the independence relation and sleep-set propagation
# ----------------------------------------------------------------------


def test_conflict_is_same_action_node_only():
    assert conflict(6, 2, 2)
    assert conflict(6, 0, 6)  # modular
    assert not conflict(6, 2, 3)  # adjacent nodes commute (tail vs head)
    assert not conflict(6, 0, 5)


def test_action_node_tracks_agent_location():
    engine = build_engine("unknown", Placement(6, homes=(0, 3)), record_views=True)
    for agent_id in engine.enabled_agents():
        _, node = engine.ring.locate(agent_id)
        assert action_node(engine, agent_id) == node
        assert 0 <= node < 6


def test_sleep_after_wakes_conflicting_agents_only():
    engine = build_engine("unknown", Placement(6, homes=(0, 3)), record_views=True)
    enabled = engine.enabled_agents()
    assert len(enabled) >= 2
    acting = enabled[0]
    other = enabled[1]
    slept = {acting, other}
    kept = sleep_after(engine, slept, acting, 6)
    assert acting not in kept  # the actor never sleeps across itself
    same_node = action_node(engine, acting) == action_node(engine, other)
    assert (other in kept) == (not same_node)
    assert sleep_after(engine, set(), acting, 6) == set()


def test_sleep_slot_round_trip():
    engine = build_engine("unknown", Placement(8, homes=(0, 3, 5)), record_views=True)
    for _ in range(9):
        engine.step(engine.enabled_agents()[0])
    snapshot = engine.snapshot()
    agents = set(engine.enabled_agents())
    slots = slots_of_agents(snapshot, agents)
    assert agents_of_slots(snapshot, slots) == agents
    assert slots_of_agents(snapshot, ()) == frozenset()


# ----------------------------------------------------------------------
# Differential gate: POR vs full expansion, small cells (tier-1)
# ----------------------------------------------------------------------


def _assert_por_equivalent(reduced, full):
    assert reduced.ok == full.ok
    assert reduced.complete == full.complete
    assert reduced.verdict == full.verdict
    assert reduced.explored == full.explored
    assert reduced.terminals == full.terminals
    assert reduced.terminal_keys == full.terminal_keys
    assert len(reduced.violations) == len(full.violations)
    # The whole point: strictly fewer transitions executed.
    assert reduced.transitions < full.transitions
    assert reduced.por_skipped > 0
    assert full.por_skipped == 0


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("placement", [
    Placement(5, homes=(0, 2)),
    Placement(6, homes=(0, 1)),
    Placement(6, homes=(0, 3)),
], ids=lambda p: f"n{p.ring_size}-{'-'.join(map(str, p.homes))}")
def test_por_differential_small(algorithm, placement):
    reduced = check_interleavings(algorithm, placement, stop_at_first=False)
    full = check_interleavings(algorithm, placement, por=False, stop_at_first=False)
    _assert_por_equivalent(reduced, full)


def test_por_escape_hatch_restores_full_expansion():
    placement = Placement(5, homes=(0, 2))
    full = check_interleavings("known_k_full", placement, por=False)
    again = check_interleavings("known_k_full", placement, por=False)
    assert full == again
    assert full.por_skipped == 0
    assert full.deduped > 0


# ----------------------------------------------------------------------
# Violations stay reachable under reduction
# ----------------------------------------------------------------------


def test_wake_race_still_caught_with_por_and_replays():
    kwargs = dict(
        factory=lambda: wake_race_agents(BUG_K),
        require_halted=True,
        require_suspended=False,
        stop_at_first=False,
    )
    reduced = check_interleavings("wake_race(known_k_logspace)", BUG_PLACEMENT, **kwargs)
    full = check_interleavings(
        "wake_race(known_k_logspace)", BUG_PLACEMENT, por=False, **kwargs
    )
    assert reduced.violations and full.violations
    assert reduced.explored == full.explored
    assert reduced.terminal_keys == full.terminal_keys
    assert reduced.transitions < full.transitions
    violation = reduced.violations[0]
    _, messages = replay_counterexample(
        violation,
        factory=lambda: wake_race_agents(BUG_K),
        require_halted=True,
        require_suspended=False,
    )
    assert violation.message in messages


def test_wake_race_still_caught_with_por_frontier():
    result = check_frontier(
        "wake_race",
        BUG_PLACEMENT,
        jobs=1,
        require_halted=False,
        require_suspended=True,
    )
    assert result.violations
    assert result.violations[0].kind == "terminal"


class _ForeverSpinner(Agent):
    """Circles the ring forever: a guaranteed livelock cycle."""

    def protocol(self, first_view):
        while True:
            yield Action.move_forward()


def test_cycle_detection_survives_por():
    placement = Placement(ring_size=4, homes=(0,))
    result = check_interleavings(
        "forever_spinner",
        placement,
        factory=lambda: [_ForeverSpinner()],
        require_halted=True,
        require_suspended=False,
    )
    assert result.violations
    assert result.violations[0].kind == "cycle"


def test_truncation_reported_identically_under_por():
    placement = Placement(6, homes=(0, 3))
    reduced = check_interleavings("known_k_full", placement, depth_limit=5)
    full = check_interleavings("known_k_full", placement, por=False, depth_limit=5)
    assert not reduced.complete and not full.complete
    assert reduced.verdict == full.verdict == "truncated"


# ----------------------------------------------------------------------
# Full-grid differential gate (mc-marked; the dedicated CI job)
# ----------------------------------------------------------------------


@pytest.mark.mc
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("n,k", [(6, 2), (6, 3), (8, 2)])
def test_por_differential_full_grid(algorithm, n, k):
    # Raw placements (no rotation dedup): the gate covers every initial
    # configuration PR 2 covered, not just necklace representatives.
    reduced = exhaust_placements(
        algorithm, n, k, dedupe_rotations=False, stop_at_first=False
    )
    full = exhaust_placements(
        algorithm, n, k, dedupe_rotations=False, por=False, stop_at_first=False
    )
    assert len(reduced) == len(full)
    for r, f in zip(reduced, full):
        _assert_por_equivalent(r, f)


@pytest.mark.mc
def test_por_reduction_is_substantial_on_grid():
    # The reduction must be worth its complexity: >=1.5x fewer executed
    # transitions across the (6, 3) cell (k=3 is where commuting
    # interleavings explode; bench_mc.py measures ~2x and above).
    reduced = exhaust_placements("unknown", 6, 3, stop_at_first=False)
    full = exhaust_placements("unknown", 6, 3, por=False, stop_at_first=False)
    reduced_t = sum(r.transitions for r in reduced)
    full_t = sum(f.transitions for f in full)
    assert full_t / reduced_t >= 1.5
