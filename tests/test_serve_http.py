"""End-to-end tests for the experiment service over real sockets.

These boot a :class:`~repro.serve.ServeDaemon` on an ephemeral port and
drive it with :class:`~repro.serve.ServeClient` and the ``repro
submit`` / ``repro jobs`` CLI verbs.  The load-bearing assertion is the
service's core contract: a sweep submitted over HTTP produces a store
digest byte-identical to the same sweep executed in-process — pinned
here at both the library level and the CLI level.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.sweep import SweepSpec, execute_sweep
from repro.serve import ServeClient, ServeDaemon, ServeError
from repro.store import RunStore

SWEEP = SweepSpec(
    algorithms=("known_k_full",),
    grid=((12, 3),),
    schedulers=("sync",),
    trials=2,
    base_seed=0,
)


@pytest.fixture()
def daemon(tmp_path):
    served = ServeDaemon(
        str(tmp_path / "store"), port=0, workers=1, quiet=True
    )
    served.start()
    try:
        yield served
    finally:
        served.stop()


@pytest.fixture()
def client(daemon):
    return ServeClient(daemon.url, timeout=10.0)


class TestOverHttp:
    def test_health_and_registry(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["records"] == 0
        names = [entry["name"] for entry in client.registry()["algorithms"]]
        assert "known_k_full" in names

    def test_http_sweep_digest_matches_library(self, tmp_path, client):
        # Baseline: the same sweep, run in-process into a fresh store.
        baseline = RunStore(tmp_path / "baseline")
        execute_sweep(SWEEP, processes=1, store=baseline)

        job = client.submit("sweep", SWEEP.to_dict())
        done = client.wait(job["id"], poll=0.05, timeout=60.0)
        assert done["state"] == "completed", done.get("error")
        assert done["result"]["executed"] == len(baseline)

        remote = client.digest()
        assert remote["records"] == len(baseline)
        assert remote["digest"] == baseline.digest()

    def test_wait_surfaces_progress(self, client):
        polled = []
        job = client.submit("sweep", SWEEP.to_dict())
        done = client.wait(
            job["id"], poll=0.05, timeout=60.0,
            on_progress=lambda j: polled.append(j["state"]),
        )
        assert done["state"] == "completed"
        assert polled  # every poll went through the callback
        assert done["progress"]["total"] == 2

    def test_runs_pagination_over_http(self, client):
        job = client.submit("sweep", SWEEP.to_dict())
        client.wait(job["id"], poll=0.05, timeout=60.0)
        page = client.runs(limit=1)
        assert page["total"] == 2 and len(page["runs"]) == 1
        record = client.run(page["runs"][0]["content_hash"][:12])
        assert record["content_hash"] == page["runs"][0]["content_hash"]

    def test_structured_errors_reach_the_client(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit("sweep", {"bogus": True})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"
        assert "invalid sweep spec" in str(excinfo.value)
        with pytest.raises(ServeError) as excinfo:
            client.run("ffff")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"

    def test_failure_artifacts_over_http(self, daemon, client):
        daemon.store.failures.put(
            "b" * 64, {"content_hash": "b" * 64, "kind": "synthetic"}
        )
        listing = client.failures()
        assert listing == {"total": 1, "failures": ["b" * 64]}
        assert client.failure("bb")["kind"] == "synthetic"

    def test_unreachable_service_is_a_repro_error(self):
        from repro.errors import ReproError

        lonely = ServeClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ReproError, match="cannot reach"):
            lonely.health()


class TestCliAgainstDaemon:
    def test_submit_wait_digest_identical_to_psweep(
        self, tmp_path, daemon, capsys
    ):
        # CLI baseline: `repro psweep` with the flag-level equivalent of
        # SWEEP into its own store, digest read back via `repro query`.
        baseline_store = tmp_path / "baseline"
        assert main([
            "psweep", "--algorithms", "known_k_full", "--grid", "12x3",
            "--schedulers", "sync", "--trials", "2", "--seed", "0",
            "--jobs", "1", "--store", str(baseline_store),
        ]) == 0
        capsys.readouterr()
        assert main([
            "query", "--store", str(baseline_store), "--digest"
        ]) == 0
        baseline_digest = capsys.readouterr().out.strip()
        assert len(baseline_digest) == 64

        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps(SWEEP.to_dict()))
        assert main([
            "submit", "--url", daemon.url, "--kind", "sweep",
            "--spec", str(spec_path), "--wait", "--poll", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "completed" in out

        assert main([
            "query", "--store", str(daemon.store.root), "--digest"
        ]) == 0
        assert capsys.readouterr().out.strip() == baseline_digest

    def test_submit_without_wait_then_jobs_verb(
        self, tmp_path, daemon, capsys
    ):
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps(SWEEP.to_dict()))
        assert main([
            "submit", "--url", daemon.url, "--kind", "sweep",
            "--spec", str(spec_path),
        ]) == 0
        submitted = capsys.readouterr().out
        assert "submitted job-" in submitted
        job_id = submitted.split()[1]

        client = ServeClient(daemon.url)
        client.wait(job_id, poll=0.05, timeout=60.0)

        assert main(["jobs", "--url", daemon.url]) == 0
        table = capsys.readouterr().out
        assert job_id in table and "completed" in table

        assert main(["jobs", "--url", daemon.url, job_id, "--json"]) == 0
        detail = json.loads(capsys.readouterr().out)
        assert detail["id"] == job_id
        assert detail["state"] == "completed"

    def test_submit_invalid_spec_fails_cleanly(
        self, tmp_path, daemon, capsys
    ):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({"bogus": True}))
        code = main([
            "submit", "--url", daemon.url, "--kind", "sweep",
            "--spec", str(spec_path),
        ])
        assert code != 0
        err = capsys.readouterr().err
        assert "invalid sweep spec" in err
