"""Engine semantics tests: atomic actions, messages, quiescence, caps."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError, SimulationLimitExceeded
from repro.ring.placement import Placement
from repro.sim.actions import Action
from repro.sim.agent import Agent
from repro.sim.engine import Engine
from repro.sim.scheduler import RandomScheduler, SynchronousScheduler
from repro.sim.trace import TraceEventKind, TraceRecorder


class Sitter(Agent):
    """Releases its token and halts at home immediately."""

    def protocol(self, first_view):
        self.saw_tokens = first_view.tokens
        yield Action.halt_here(broadcast=None)


class Hopper(Agent):
    """Moves ``hops`` nodes then halts."""

    def __init__(self, hops: int) -> None:
        super().__init__()
        self.hops = hops
        self.declare("hops")

    def protocol(self, first_view):
        for _ in range(self.hops):
            yield Action.move_forward()
        yield Action.halt_here()


class TokenDropper(Agent):
    """Releases a token at home, walks one circuit counting tokens, halts."""

    def __init__(self, ring_size: int) -> None:
        super().__init__()
        self.ring_size = ring_size
        self.tokens_seen = 0
        self.declare("ring_size", "tokens_seen")

    def protocol(self, first_view):
        view = yield Action.move_forward(release_token=True)
        for _ in range(self.ring_size - 1):
            if view.tokens > 0:
                self.tokens_seen += 1
            view = yield Action.move_forward()
        if view.tokens > 0:
            self.tokens_seen += 1
        yield Action.halt_here()


class Caller(Agent):
    """Moves next to its neighbour and shouts a message, then halts."""

    def __init__(self, hops: int, payload: object) -> None:
        super().__init__()
        self.hops = hops
        self.payload = payload

    def protocol(self, first_view):
        for _ in range(self.hops):
            yield Action.move_forward()
        yield Action.halt_here(broadcast=self.payload)


class Listener(Agent):
    """Suspends at home until any message arrives, then halts."""

    def __init__(self) -> None:
        super().__init__()
        self.heard = None

    def protocol(self, first_view):
        view = yield Action.suspend_here()
        while not view.messages:
            view = yield Action.suspend_here()
        self.heard = view.messages
        yield Action.halt_here()


class Spinner(Agent):
    """Moves forever — used to test the step safety cap."""

    def protocol(self, first_view):
        while True:
            yield Action.move_forward()


def test_initial_buffer_rule_first_view_has_no_token():
    # The agent acts at its home before anyone can have released there.
    placement = Placement(ring_size=4, homes=(0, 2))
    agents = [Sitter(), Sitter()]
    engine = Engine(placement, agents)
    engine.run()
    assert agents[0].saw_tokens == 0 and agents[1].saw_tokens == 0


def test_agent_count_must_match_placement():
    with pytest.raises(ConfigurationError):
        Engine(Placement(ring_size=4, homes=(0, 2)), [Sitter()])


def test_moves_and_positions():
    placement = Placement(ring_size=6, homes=(0, 3))
    agents = [Hopper(2), Hopper(1)]
    engine = Engine(placement, agents)
    metrics = engine.run()
    assert metrics.total_moves == 3
    assert engine.final_positions() == {0: 2, 1: 4}
    assert engine.quiescent


def test_token_visibility_around_circuit():
    placement = Placement(ring_size=5, homes=(0, 2))
    agents = [TokenDropper(5), TokenDropper(5)]
    engine = Engine(placement, agents)
    engine.run()
    # Each agent sees both tokens (its own on return, the other's en route).
    assert agents[0].tokens_seen == 2
    assert agents[1].tokens_seen == 2


def test_broadcast_wakes_suspended_listener():
    placement = Placement(ring_size=6, homes=(0, 3))
    caller, listener = Caller(3, "ping"), Listener()
    engine = Engine(placement, [caller, listener])
    engine.run()
    assert listener.heard == ("ping",)
    assert listener.halted and caller.halted


def test_broadcast_not_delivered_to_self():
    placement = Placement(ring_size=4, homes=(1,))
    caller = Caller(0, "echo")
    engine = Engine(placement, [caller])
    engine.run()
    snapshot = engine.snapshot()
    assert snapshot.total_messages_pending() == 0


def test_in_transit_agents_are_invisible():
    # The listener suspends; the hopper passes through the listener's
    # node without waking it (no broadcast) and without being seen.
    placement = Placement(ring_size=4, homes=(0, 2))
    hopper, listener = Hopper(4), Listener()
    engine = Engine(placement, [hopper, listener], max_steps=200)
    engine.run_rounds(50)
    assert hopper.halted
    assert listener.suspended  # never woken; passing hopper is invisible
    assert engine.quiescent


def test_quiescence_with_suspended_agent():
    placement = Placement(ring_size=4, homes=(0,))
    listener = Listener()
    engine = Engine(placement, [listener])
    engine.run()  # suspends immediately; no messages ever arrive
    assert engine.quiescent
    assert listener.suspended and not listener.halted


def test_step_cap_raises():
    placement = Placement(ring_size=4, homes=(0,))
    engine = Engine(placement, [Spinner()], max_steps=100)
    with pytest.raises(SimulationLimitExceeded):
        engine.run()


def test_final_positions_rejects_in_transit():
    placement = Placement(ring_size=8, homes=(0,))
    engine = Engine(placement, [Hopper(5)])
    engine.run_rounds(2)
    with pytest.raises(SimulationError):
        engine.final_positions()


def test_snapshot_structure():
    placement = Placement(ring_size=4, homes=(0, 2))
    engine = Engine(placement, [Sitter(), Sitter()])
    before = engine.snapshot()
    assert before.all_queues_empty() is False  # initial buffers are queues
    engine.run()
    after = engine.snapshot()
    assert after.all_queues_empty()
    assert after.tokens == (0, 0, 0, 0)  # Sitter halts without release
    assert after.occupied_nodes() == (0, 2)
    local = after.local(0)
    assert len(local.staying_states) == 1


def test_trace_records_lifecycle():
    placement = Placement(ring_size=6, homes=(0, 3))
    trace = TraceRecorder()
    engine = Engine(placement, [Caller(3, "hi"), Listener()], trace=trace)
    engine.run()
    kinds = {event.kind for event in trace.events}
    assert TraceEventKind.ARRIVE in kinds
    assert TraceEventKind.MOVE in kinds
    assert TraceEventKind.BROADCAST in kinds
    assert TraceEventKind.HALT in kinds
    assert TraceEventKind.SUSPEND in kinds
    assert TraceEventKind.WAKE in kinds
    broadcasts = trace.of_kind(TraceEventKind.BROADCAST)
    assert broadcasts[0].detail == "hi"


def test_synchronous_rounds_measure_time():
    placement = Placement(ring_size=8, homes=(0,))
    engine = Engine(placement, [Hopper(5)], scheduler=SynchronousScheduler())
    metrics = engine.run()
    # 5 hops + final halt action: 6 rounds.
    assert metrics.rounds == 6


def test_random_scheduler_reaches_same_outcome():
    placement = Placement(ring_size=6, homes=(0, 3))
    engine = Engine(
        placement, [Hopper(2), Hopper(1)], scheduler=RandomScheduler(seed=3)
    )
    metrics = engine.run()
    assert metrics.rounds is None  # async schedulers do not measure time
    assert engine.final_positions() == {0: 2, 1: 4}


def test_memory_audit_interval_validation():
    placement = Placement(ring_size=4, homes=(0,))
    with pytest.raises(ConfigurationError):
        Engine(placement, [Sitter()], memory_audit_interval=0)


def test_fifo_no_overtaking_two_hoppers():
    # Both hoppers traverse the same arc; the one starting behind can
    # never arrive ahead of the other at any shared node.
    placement = Placement(ring_size=8, homes=(0, 1))
    trace = TraceRecorder(keep=lambda e: e.kind is TraceEventKind.ARRIVE)
    engine = Engine(placement, [Hopper(6), Hopper(6)], trace=trace)
    engine.run()
    arrivals = {}
    for order, event in enumerate(trace.events):
        arrivals.setdefault(event.node, []).append((order, event.agent_id))
    for node, entries in arrivals.items():
        ids = [agent_id for _, agent_id in entries]
        if len(ids) == 2:
            # Agent 1 started at node 1, ahead of agent 0: it must
            # arrive first wherever both pass.
            assert ids == [1, 0]


def test_single_node_ring_edge_case():
    # n = 1, k = 1: the agent's circuit is one hop back to itself.
    placement = Placement(ring_size=1, homes=(0,))
    from repro.experiments.runner import run_experiment

    for algorithm in ("known_k_full", "known_n_full", "known_k_logspace"):
        result = run_experiment(algorithm, placement)
        assert result.ok, f"{algorithm}: {result.report.describe()}"
        assert result.final_positions == (0,)
