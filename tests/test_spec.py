"""Tests for the declarative ExperimentSpec (round trip, hash, replay)."""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments.runner import build_engine, run_experiment
from repro.ring.placement import Placement, random_placement
from repro.spec import ExperimentSpec, PlacementSpec, run_spec


class TestPlacementSpec:
    def test_random_builds_like_random_placement(self):
        spec = PlacementSpec(kind="random", ring_size=30, agent_count=5, seed=7)
        assert spec.build() == random_placement(30, 5, random.Random(7))

    def test_distances_and_homes_kinds(self):
        by_distance = PlacementSpec(kind="distances", distances=(5, 7, 4, 8))
        assert by_distance.build().distances == (5, 7, 4, 8)
        by_homes = PlacementSpec(kind="homes", ring_size=12, homes=(0, 3, 7))
        assert by_homes.build() == Placement(ring_size=12, homes=(0, 3, 7))

    def test_equidistant_and_quarter_kinds(self):
        assert PlacementSpec(
            kind="equidistant", ring_size=12, agent_count=4
        ).build().symmetry_degree == 4
        quarter = PlacementSpec(kind="quarter", ring_size=32, agent_count=4).build()
        assert max(quarter.homes) < 8

    def test_from_placement_is_lossless(self):
        placement = random_placement(40, 6, random.Random(3))
        spec = PlacementSpec.from_placement(placement)
        assert spec.build() == placement
        assert PlacementSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown placement kind"):
            PlacementSpec(kind="banana", ring_size=8, agent_count=2)

    def test_missing_required_field_rejected(self):
        with pytest.raises(ConfigurationError, match="requires 'agent_count'"):
            PlacementSpec(kind="random", ring_size=8, seed=0)

    def test_irrelevant_field_rejected(self):
        with pytest.raises(ConfigurationError, match="does not take 'seed'"):
            PlacementSpec(kind="distances", distances=(3, 5), seed=1)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            PlacementSpec.from_dict({"kind": "random", "n": 8})

    def test_sequences_normalise_to_int_tuples(self):
        spec = PlacementSpec(kind="distances", distances=[3, 5])
        assert spec.distances == (3, 5)


class TestExperimentSpecValidation:
    def test_unknown_algorithm_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            ExperimentSpec(
                algorithm="nope",
                placement=PlacementSpec(kind="distances", distances=(3, 5)),
            )

    def test_bad_scheduler_spec_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            ExperimentSpec(
                algorithm="unknown",
                placement=PlacementSpec(kind="distances", distances=(3, 5)),
                scheduler="laggard:wat=1",
            )

    def test_concrete_placement_must_go_through_placementspec(self):
        placement = random_placement(12, 3, random.Random(0))
        with pytest.raises(ConfigurationError, match="PlacementSpec"):
            ExperimentSpec(algorithm="unknown", placement=placement)
        spec = ExperimentSpec.for_placement("unknown", placement)
        assert spec.build_placement() == placement

    def test_scheduler_string_canonicalises_on_construction(self):
        spec = ExperimentSpec(
            algorithm="unknown",
            placement=PlacementSpec(kind="distances", distances=(3, 5)),
            scheduler=" laggard: victim=0 , patience=5 ",
        )
        assert spec.scheduler == "laggard:victims=0,patience=5"

    def test_equal_specs_compare_and_hash_equal(self):
        def make():
            return ExperimentSpec(
                algorithm="known_k_full",
                placement=PlacementSpec(
                    kind="random", ring_size=24, agent_count=4, seed=1
                ),
                scheduler="laggard:victim=2",
            )

        assert make() == make()
        assert hash(make()) == hash(make())
        assert make().content_hash() == make().content_hash()

    def test_with_options_replaces_fields(self):
        spec = ExperimentSpec(
            algorithm="unknown",
            placement=PlacementSpec(kind="distances", distances=(3, 5)),
        )
        bounded = spec.with_options(max_steps=100)
        assert bounded.max_steps == 100 and spec.max_steps is None
        assert bounded.content_hash() != spec.content_hash()


# -- Hypothesis strategies ---------------------------------------------------

_ALGORITHM = st.sampled_from(
    ["known_k_full", "known_n_full", "known_k_logspace", "unknown"]
)

_RANDOM_PLACEMENT = st.builds(
    lambda n, k, seed: PlacementSpec(
        kind="random", ring_size=n, agent_count=k, seed=seed
    ),
    n=st.integers(8, 256),
    k=st.integers(1, 8),
    seed=st.integers(0, 2**31),
)
_DISTANCE_PLACEMENT = st.builds(
    lambda distances: PlacementSpec(kind="distances", distances=tuple(distances)),
    distances=st.lists(st.integers(1, 12), min_size=1, max_size=6),
)
_HOMES_PLACEMENT = st.builds(
    lambda n, homes: PlacementSpec(
        kind="homes", ring_size=n, homes=tuple(sorted(homes))
    ),
    n=st.just(64),
    homes=st.sets(st.integers(0, 63), min_size=1, max_size=6),
)
_EQUI_PLACEMENT = st.builds(
    lambda n, k: PlacementSpec(kind="equidistant", ring_size=n, agent_count=k),
    n=st.integers(8, 64),
    k=st.integers(1, 8),
)
_PLACEMENT = st.one_of(
    _RANDOM_PLACEMENT, _DISTANCE_PLACEMENT, _HOMES_PLACEMENT, _EQUI_PLACEMENT
)

_SCHEDULER = st.one_of(
    st.sampled_from(["sync", "random", "laggard", "burst", "chaos"]),
    st.builds(lambda s: f"random:seed={s}", st.integers(0, 99)),
    st.builds(
        lambda victims, patience: (
            f"laggard:victims={'-'.join(map(str, sorted(victims)))},"
            f"patience={patience}"
        ),
        victims=st.sets(st.integers(0, 7), min_size=1, max_size=3),
        patience=st.integers(1, 200),
    ),
    st.builds(lambda b, s: f"burst:burst={b},seed={s}", st.integers(1, 99),
              st.integers(0, 99)),
    st.builds(lambda e: f"chaos:epoch={e}", st.integers(1, 99)),
)

_EXPERIMENT_SPEC = st.builds(
    ExperimentSpec,
    algorithm=_ALGORITHM,
    placement=_PLACEMENT,
    scheduler=_SCHEDULER,
    scheduler_seed=st.integers(0, 2**31),
    max_steps=st.one_of(st.none(), st.integers(1, 10**6)),
    memory_audit_interval=st.integers(1, 64),
    collect_metrics=st.booleans(),
    validate_enabledness=st.booleans(),
    record_views=st.booleans(),
)


class TestRoundTripProperties:
    @settings(max_examples=200, deadline=None)
    @given(spec=_EXPERIMENT_SPEC)
    def test_dict_round_trip_is_identity(self, spec):
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=200, deadline=None)
    @given(spec=_EXPERIMENT_SPEC)
    def test_json_round_trip_preserves_spec_and_hash(self, spec):
        reloaded = ExperimentSpec.from_json(spec.to_json())
        assert reloaded == spec
        assert reloaded.content_hash() == spec.content_hash()

    @settings(max_examples=100, deadline=None)
    @given(spec=_EXPERIMENT_SPEC, salt=st.integers(0, 2**31))
    def test_derive_seed_is_stable_and_63_bit(self, spec, salt):
        seed = spec.derive_seed(salt)
        assert seed == spec.derive_seed(salt)
        assert 0 <= seed < 2**63

    @settings(max_examples=100, deadline=None)
    @given(spec=_EXPERIMENT_SPEC)
    def test_content_hash_differs_when_algorithm_flips(self, spec):
        other = spec.with_options(
            algorithm="unknown" if spec.algorithm != "unknown" else "known_k_full"
        )
        assert other.content_hash() != spec.content_hash()


class TestContentHash:
    def test_pinned_hash(self):
        # The content hash is a cross-run contract (cache keys, derived
        # seeds); this pin detects accidental canonical-form changes.
        spec = ExperimentSpec(
            algorithm="known_k_full",
            placement=PlacementSpec(kind="random", ring_size=24, agent_count=4, seed=0),
        )
        assert spec.content_hash() == (
            "2e06224e588a4d06c90f2341a7f5b786ccf1a454d749549048bc688b5d442647"
        )

    def test_hash_is_sensitive_to_every_section(self):
        base = ExperimentSpec(
            algorithm="known_k_full",
            placement=PlacementSpec(kind="random", ring_size=24, agent_count=4, seed=0),
        )
        variants = [
            base.with_options(algorithm="unknown"),
            base.with_options(
                placement=PlacementSpec(
                    kind="random", ring_size=24, agent_count=4, seed=1
                )
            ),
            base.with_options(scheduler="random"),
            base.with_options(scheduler_seed=1),
            base.with_options(max_steps=10),
            base.with_options(memory_audit_interval=1),
            base.with_options(collect_metrics=False),
            base.with_options(validate_enabledness=True),
            base.with_options(record_views=True),
        ]
        hashes = {spec.content_hash() for spec in variants} | {base.content_hash()}
        assert len(hashes) == len(variants) + 1


class TestSpecDrivenRuns:
    """The acceptance contract: JSON-reloaded specs replay byte for byte."""

    SPECS = [
        ExperimentSpec(
            algorithm="known_k_full",
            placement=PlacementSpec(kind="random", ring_size=24, agent_count=4, seed=2),
            scheduler="random",
            scheduler_seed=5,
        ),
        ExperimentSpec(
            algorithm="unknown",
            placement=PlacementSpec(kind="distances", distances=(5, 7, 4, 8)),
            scheduler="laggard:victims=1,patience=9",
            scheduler_seed=3,
        ),
        ExperimentSpec(
            algorithm="known_k_logspace",
            placement=PlacementSpec(kind="homes", ring_size=20, homes=(0, 3, 9, 11)),
            scheduler="chaos:epoch=7",
        ),
        ExperimentSpec(
            algorithm="known_n_full",
            placement=PlacementSpec(kind="equidistant", ring_size=18, agent_count=3),
            scheduler="burst:burst=5,seed=2",
        ),
    ]

    @pytest.mark.parametrize("spec", SPECS, ids=[s.algorithm for s in SPECS])
    def test_json_reload_reruns_identically(self, spec):
        reloaded = ExperimentSpec.from_json(spec.to_json())
        original = run_experiment(spec)
        replayed = run_experiment(reloaded)
        assert replayed.row() == original.row()
        assert replayed.final_positions == original.final_positions
        engine_a = build_engine(spec)
        engine_b = build_engine(reloaded)
        engine_a.run()
        engine_b.run()
        assert engine_a.activation_log == engine_b.activation_log
        assert engine_a.metrics == engine_b.metrics

    @pytest.mark.parametrize("spec", SPECS, ids=[s.algorithm for s in SPECS])
    def test_spec_run_matches_kwargs_run(self, spec):
        placement = spec.build_placement()
        via_kwargs = run_experiment(
            spec.algorithm, placement, scheduler=spec.build_scheduler()
        )
        via_spec = run_spec(spec)
        assert via_spec.row() == via_kwargs.row()
        engine_spec = build_engine(spec)
        engine_kwargs = build_engine(
            spec.algorithm, placement, scheduler=spec.build_scheduler()
        )
        engine_spec.run()
        engine_kwargs.run()
        assert engine_spec.activation_log == engine_kwargs.activation_log
        assert engine_spec.metrics == engine_kwargs.metrics

    def test_spec_file_load(self, tmp_path):
        spec = self.SPECS[0]
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        assert ExperimentSpec.load(str(path)) == spec

    def test_invalid_json_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            ExperimentSpec.from_json("{nope")

    def test_missing_spec_file_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            ExperimentSpec.load(str(tmp_path / "missing.json"))

    def test_non_dict_sections_are_configuration_errors(self):
        payload = self.SPECS[0].to_dict()
        payload["scheduler"] = "random"  # hand-edited: string, not object
        with pytest.raises(ConfigurationError, match="section 'scheduler'"):
            ExperimentSpec.from_dict(payload)

    def test_spec_calls_reject_extra_engine_kwargs(self):
        # A spec carries its own limits/options: silently discarding an
        # explicit max_steps would drop the caller's run limit.
        spec = self.SPECS[0]
        with pytest.raises(ConfigurationError, match="max_steps"):
            run_experiment(spec, max_steps=1)
        with pytest.raises(ConfigurationError, match="validate_enabledness"):
            build_engine(spec, validate_enabledness=True)
        with pytest.raises(ConfigurationError, match="do not pass one"):
            run_experiment(spec, spec.build_placement())
        # Passing the signature default explicitly stays allowed (the
        # spec decides, exactly as when the kwarg is omitted).
        assert run_experiment(spec, max_steps=None).ok

    def test_from_dict_rejects_unknown_keys(self):
        payload = self.SPECS[0].to_dict()
        payload["extra"] = 1
        with pytest.raises(ConfigurationError, match="unknown keys"):
            ExperimentSpec.from_dict(payload)

    def test_from_dict_requires_algorithm_and_placement(self):
        with pytest.raises(ConfigurationError, match="missing required key"):
            ExperimentSpec.from_dict({"algorithm": "unknown"})

    def test_spec_engine_honours_engine_options(self):
        spec = ExperimentSpec(
            algorithm="known_k_full",
            placement=PlacementSpec(kind="distances", distances=(3, 5, 4)),
            collect_metrics=False,
            record_views=True,
            max_steps=50_000,
        )
        engine = spec.build_engine()
        engine.run()
        assert engine.metrics.total_moves == 0  # metrics stayed empty
        engine.fork()  # record_views=True makes forking legal

    def test_run_method_delegates(self):
        spec = self.SPECS[1]
        assert spec.run().row() == run_experiment(spec).row()

    def test_mc_accepts_registry_resolved_spec_instances(self):
        # The checker consumes the same registry the specs validate
        # against, so a spec's algorithm/placement drive it directly.
        from repro.mc import check_interleavings

        spec = ExperimentSpec(
            algorithm="unknown",
            placement=PlacementSpec(kind="distances", distances=(2, 4)),
        )
        result = check_interleavings(spec.algorithm, spec.build_placement())
        assert result.ok


class TestJsonShape:
    def test_to_json_sections(self):
        payload = json.loads(TestSpecDrivenRuns.SPECS[0].to_json())
        assert set(payload) == {
            "algorithm", "placement", "scheduler", "engine", "limits"
        }
        assert payload["scheduler"] == {"spec": "random", "seed": 5}
        assert payload["placement"]["kind"] == "random"
        assert payload["limits"] == {"max_steps": None}

    def test_missing_sections_take_defaults(self):
        spec = ExperimentSpec.from_dict(
            {
                "algorithm": "unknown",
                "placement": {"kind": "distances", "distances": [3, 5]},
            }
        )
        assert spec.scheduler == "sync"
        assert spec.scheduler_seed == 0
        assert spec.max_steps is None
        assert spec.collect_metrics is True
