"""Tests for the service-coverage metrics (paper §1.1 motivation)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.coverage import (
    mean_service_gap,
    service_gaps,
    simulate_sweep,
    worst_service_gap,
)
from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiment
from repro.ring.placement import quarter_packed_placement


class TestServiceGaps:
    def test_single_agent(self):
        gaps = service_gaps(4, [0])
        assert gaps == [0, 1, 2, 3]

    def test_uniform_two_agents(self):
        gaps = service_gaps(6, [0, 3])
        assert gaps == [0, 1, 2, 0, 1, 2]

    def test_worst_and_mean(self):
        assert worst_service_gap(6, [0, 3]) == 2
        assert mean_service_gap(6, [0, 3]) == pytest.approx(1.0)

    def test_clustered_is_much_worse(self):
        clustered = worst_service_gap(40, [0, 1, 2, 3])
        uniform = worst_service_gap(40, [0, 10, 20, 30])
        assert clustered == 36
        assert uniform == 9

    def test_no_agents_rejected(self):
        with pytest.raises(ConfigurationError):
            service_gaps(5, [])


class TestSweep:
    def test_every_node_visited(self):
        visits, _ = simulate_sweep(8, [0, 4], rounds=8)
        assert all(count > 0 for count in visits.values())

    def test_uniform_cadence_bound(self):
        # From a uniform configuration the inter-visit interval is n/k.
        _, max_interval = simulate_sweep(12, [0, 4, 8], rounds=36)
        assert max_interval == 4

    def test_negative_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_sweep(6, [0], rounds=-1)

    def test_zero_rounds(self):
        visits, max_interval = simulate_sweep(6, [0, 3], rounds=0)
        assert max_interval == 0
        assert visits[0] == 1 and visits[1] == 0


class TestEndToEndServiceImprovement:
    def test_deployment_achieves_ceil_cadence(self):
        placement = quarter_packed_placement(36, 6)
        before = worst_service_gap(36, placement.homes)
        result = run_experiment("known_k_logspace", placement)
        after = worst_service_gap(36, result.final_positions)
        assert after == math.ceil(36 / 6) - 1 + 0  # gap = n/k - 1 at worst...
        # worst wait = largest gap minus nothing: uniform gaps of 6 give
        # the node right after an agent a 5-hop wait.
        assert after == 5
        assert before > 4 * after
        _, interval = simulate_sweep(36, result.final_positions, rounds=72)
        assert interval == 6  # the ceil(n/k) patrol cadence
