"""Tests for the ASCII renderer and smoke tests for every example script."""

from __future__ import annotations

import pathlib
import runpy

import pytest

from repro.analysis.render import render_configuration, render_gaps, render_positions
from repro.experiments.runner import build_engine
from repro.ring.placement import equidistant_placement

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestRender:
    def test_render_positions_markers(self):
        text = render_positions(6, agent_nodes=[0, 3], token_nodes=[3, 5])
        assert text == "a..A.T"

    def test_render_positions_width(self):
        text = render_positions(3, agent_nodes=[1], width=2)
        assert text == "..aa.."

    def test_render_gaps(self):
        assert render_gaps(12, [0, 4, 8]) == "gaps: 4 x3"
        assert render_gaps(10, [0, 3, 6, 8]) == "gaps: 2 x2, 3 x2"

    def test_render_gaps_empty(self):
        assert render_gaps(5, []) == "gaps: (none)"

    def test_render_configuration_lifecycle(self):
        engine = build_engine("known_k_full", equidistant_placement(8, 2))
        before = render_configuration(engine.snapshot())
        assert ">" in before  # agents start queued in their home buffers
        engine.run()
        after = render_configuration(engine.snapshot())
        assert after.count("A") == 2  # halted agents on token nodes
        assert ">" not in after


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        sorted(path.name for path in EXAMPLES_DIR.glob("*.py")),
    )
    def test_example_runs_cleanly(self, script, capsys):
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
        output = capsys.readouterr().out
        assert output.strip(), f"{script} produced no output"
        assert "FAILED" not in output

    def test_examples_exist(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert "quickstart.py" in names
        assert len(names) >= 3
