"""Pin each seeded scheduler's RNG consumption order as a contract.

Any change to *when* a scheduler consults its ``random.Random`` — an
extra draw, a skipped draw, a different call — silently re-times every
archived seeded run: content-addressed records, fuzz corpora and replay
logs all assume a seed reproduces its schedule forever.  These tests
drive each scheduler through mixed enabled-set sequences against an
independent replica RNG that makes exactly the documented draws, and
additionally assert the zero-draw branches really leave the RNG state
untouched (``getstate()`` equality).
"""

from __future__ import annotations

import random

from repro.sim.scheduler import (
    BurstScheduler,
    ChaosScheduler,
    LaggardScheduler,
    RandomScheduler,
)

#: a mixed diet of enabled sets: growing, shrinking, singleton, gappy.
ENABLED_SEQUENCES = [
    [0, 1, 2, 3],
    [1, 3],
    [0],
    [0, 2, 4, 6, 8],
    [5],
    [2, 3, 4],
    [0, 1],
    [7, 8, 9],
    [1],
    [0, 1, 2, 3, 4, 5],
] * 6


def test_random_scheduler_one_choice_per_batch():
    scheduler = RandomScheduler(seed=42)
    replica = random.Random(42)
    for enabled in ENABLED_SEQUENCES:
        assert scheduler.next_batch(enabled) == [replica.choice(enabled)]


def test_laggard_scheduler_one_choice_per_batch_from_documented_pool():
    patience = 3
    scheduler = LaggardScheduler([0, 1], patience=patience, seed=7)
    replica = random.Random(7)
    budget = patience
    for enabled in ENABLED_SEQUENCES:
        eager = [a for a in enabled if a not in (0, 1)]
        if eager and budget > 0:
            budget -= 1
            expected = [replica.choice(eager)]
        else:
            lagging = [a for a in enabled if a in (0, 1)]
            if lagging:
                budget = patience
                expected = [replica.choice(lagging)]
            else:
                expected = [replica.choice(eager)]
        assert scheduler.next_batch(enabled) == expected


def test_chaos_scheduler_draws_only_in_documented_modes():
    epoch = 4
    scheduler = ChaosScheduler(epoch=epoch, seed=11)
    replica = random.Random(11)
    burst_target = None
    for step, enabled in enumerate(ENABLED_SEQUENCES):
        mode = (step // epoch) % 4
        state_before = scheduler._rng.getstate()
        if mode == 0:
            expected = [replica.choice(enabled)]
        elif mode == 1:
            expected = [enabled[-1] if len(enabled) > 1 else enabled[0]]
        elif mode == 2:
            expected = [enabled[0]]
        else:
            if burst_target not in enabled:
                burst_target = replica.choice(enabled)
            expected = [burst_target]
        got = scheduler.next_batch(enabled)
        assert got == expected, f"step {step} mode {mode}"
        if mode in (1, 2):
            # Starvation modes consume no randomness at all.
            assert scheduler._rng.getstate() == state_before


def test_burst_scheduler_continuing_a_burst_draws_nothing():
    burst = 3
    scheduler = BurstScheduler(burst=burst, seed=5)
    replica = random.Random(5)
    current, remaining = None, 0
    for enabled in ENABLED_SEQUENCES:
        state_before = scheduler._rng.getstate()
        if current is not None and current in enabled and remaining > 0:
            remaining -= 1
            expected = [current]
            continuing = True
        else:
            current = replica.choice(enabled)
            remaining = burst - 1
            expected = [current]
            continuing = False
        assert scheduler.next_batch(enabled) == expected
        if continuing:
            assert scheduler._rng.getstate() == state_before


def test_same_seed_same_schedule_forever():
    # The end-to-end consequence of the contract: two instances with the
    # same seed, fed the same enabled sequences, agree batch for batch.
    for factory in (
        lambda: RandomScheduler(seed=3),
        lambda: LaggardScheduler([0], patience=4, seed=3),
        lambda: ChaosScheduler(epoch=5, seed=3),
        lambda: BurstScheduler(burst=6, seed=3),
    ):
        a, b = factory(), factory()
        for enabled in ENABLED_SEQUENCES:
            assert a.next_batch(enabled) == b.next_batch(enabled)
