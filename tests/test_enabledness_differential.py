"""Differential tests: incremental enabledness vs the full recompute.

The engine maintains the enabled-agent set live (O(1) updates per state
transition).  The seed engine's full O(k) rescan survives as
``Engine.recompute_enabled_agents`` — the oracle.  These tests prove:

* the incremental set equals the oracle after *every* batch, across all
  schedulers and all four algorithms (``validate_enabledness=True``
  asserts exactly that inside ``_run_batch``),
* running with validation on does not perturb the execution: the
  ``activation_log``, the full :class:`Metrics`, and the final
  positions are identical with and without the oracle in the loop,
* tracing does not perturb the execution either,
* a recorded execution replays to the identical log under validation.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import ALGORITHMS, build_agents
from repro.ring.placement import random_placement
from repro.sim.engine import Engine
from repro.sim.scheduler import (
    BurstScheduler,
    ChaosScheduler,
    LaggardScheduler,
    RandomScheduler,
    ReplayScheduler,
    SynchronousScheduler,
)
from repro.sim.trace import TraceRecorder

#: name -> zero-state scheduler factory (fresh instance per engine so
#: two engines never share RNG state).
SCHEDULER_FACTORIES = {
    "SynchronousScheduler": lambda: SynchronousScheduler(),
    "RandomScheduler": lambda: RandomScheduler(seed=13),
    "LaggardScheduler": lambda: LaggardScheduler([0, 1], patience=7, seed=13),
    "BurstScheduler": lambda: BurstScheduler(burst=9, seed=13),
    "ChaosScheduler": lambda: ChaosScheduler(epoch=11, seed=13),
}

ALL_ALGORITHMS = sorted(ALGORITHMS)


def _engine(algorithm, n, k, placement_seed, scheduler, **kwargs) -> Engine:
    placement = random_placement(n, k, random.Random(placement_seed))
    agents = build_agents(algorithm, k, n)
    return Engine(placement, agents, scheduler=scheduler, **kwargs)


def _metrics_tuple(engine: Engine):
    m = engine.metrics
    return (
        dict(m.moves_per_agent),
        dict(m.activations_per_agent),
        dict(m.memory_bits_per_agent),
        m.messages_sent,
        m.messages_delivered,
        m.tokens_released,
        m.rounds,
    )


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULER_FACTORIES))
def test_incremental_equals_recompute_after_every_batch(
    algorithm, scheduler_name
):
    # validate_enabledness=True raises inside _run_batch the moment the
    # live set and the O(k) oracle disagree, so reaching quiescence IS
    # the per-batch differential proof.
    engine = _engine(
        algorithm,
        36,
        6,
        placement_seed=5,
        scheduler=SCHEDULER_FACTORIES[scheduler_name](),
        validate_enabledness=True,
    )
    engine.run()
    assert engine.quiescent
    engine.check_enabledness_invariant()  # terminal state agrees too
    assert engine.enabled_agents() == engine.recompute_enabled_agents() == []


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULER_FACTORIES))
def test_oracle_mode_does_not_perturb_the_execution(algorithm, scheduler_name):
    fast = _engine(
        algorithm, 36, 6, 5, SCHEDULER_FACTORIES[scheduler_name]()
    )
    validated = _engine(
        algorithm,
        36,
        6,
        5,
        SCHEDULER_FACTORIES[scheduler_name](),
        validate_enabledness=True,
    )
    fast.run()
    validated.run()
    assert fast.activation_log == validated.activation_log
    assert _metrics_tuple(fast) == _metrics_tuple(validated)
    assert fast.final_positions() == validated.final_positions()


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_tracing_does_not_perturb_the_execution(algorithm):
    untraced = _engine(algorithm, 30, 5, 9, RandomScheduler(seed=4))
    traced = _engine(
        algorithm, 30, 5, 9, RandomScheduler(seed=4), trace=TraceRecorder()
    )
    untraced.run()
    traced.run()
    assert untraced.activation_log == traced.activation_log
    assert _metrics_tuple(untraced) == _metrics_tuple(traced)
    assert untraced.final_positions() == traced.final_positions()


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_replay_reproduces_log_under_validation(algorithm):
    recorded = _engine(algorithm, 30, 5, 2, ChaosScheduler(epoch=8, seed=6))
    recorded.run()
    replayed = _engine(
        algorithm,
        30,
        5,
        2,
        ReplayScheduler(recorded.activation_log),
        validate_enabledness=True,
    )
    replayed.run()
    assert replayed.activation_log == recorded.activation_log
    assert replayed.final_positions() == recorded.final_positions()
    assert _metrics_tuple(replayed) == _metrics_tuple(recorded)


def test_collect_metrics_off_does_not_perturb_the_execution():
    with_metrics = _engine("known_k_full", 36, 6, 5, RandomScheduler(seed=1))
    without_metrics = _engine(
        "known_k_full", 36, 6, 5, RandomScheduler(seed=1), collect_metrics=False
    )
    with_metrics.run()
    without_metrics.run()
    assert with_metrics.activation_log == without_metrics.activation_log
    assert with_metrics.final_positions() == without_metrics.final_positions()
    # Disabled collection really is disabled (zero-cost hot path).
    assert without_metrics.metrics.total_activations == 0
    assert without_metrics.metrics.total_moves == 0
    assert without_metrics.metrics.rounds is None


@settings(max_examples=25, deadline=None)
@given(
    algorithm=st.sampled_from(ALL_ALGORITHMS),
    n=st.integers(min_value=4, max_value=40),
    k=st.integers(min_value=1, max_value=8),
    placement_seed=st.integers(min_value=0, max_value=2**16),
    scheduler_seed=st.integers(min_value=0, max_value=2**16),
    scheduler_name=st.sampled_from(sorted(SCHEDULER_FACTORIES)),
)
def test_property_incremental_matches_oracle(
    algorithm, n, k, placement_seed, scheduler_seed, scheduler_name
):
    k = min(k, n)
    factories = {
        "SynchronousScheduler": lambda: SynchronousScheduler(),
        "RandomScheduler": lambda: RandomScheduler(seed=scheduler_seed),
        "LaggardScheduler": lambda: LaggardScheduler(
            [0], patience=5, seed=scheduler_seed
        ),
        "BurstScheduler": lambda: BurstScheduler(burst=6, seed=scheduler_seed),
        "ChaosScheduler": lambda: ChaosScheduler(epoch=7, seed=scheduler_seed),
    }
    engine = _engine(
        algorithm,
        n,
        k,
        placement_seed,
        factories[scheduler_name](),
        validate_enabledness=True,
    )
    engine.run()
    assert engine.quiescent
    assert engine.recompute_enabled_agents() == []
