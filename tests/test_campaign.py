"""Tests for fault-tolerant campaign orchestration (repro.campaign).

The acceptance bar for the whole subsystem is byte-identity: a campaign
disturbed by deterministic chaos faults (worker SIGKILLs, stalls,
heartbeat silence) must converge to a run store whose logical digest
equals an undisturbed serial run's.  Everything here is pinned — chaos
decisions are pure hash functions of (seed, unit, attempt), so these
multi-process tests replay exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ChaosPlan,
    parse_chaos_spec,
    run_campaign,
)
from repro.campaign.spec import WorkUnit
from repro.errors import (
    CampaignInterrupted,
    ConfigurationError,
    ProvenanceWarning,
    ReproError,
)
from repro.experiments.sweep import SweepSpec, execute_sweep
from repro.fuzz import FuzzSpec, fuzz, shard_specs
from repro.spec import PlacementSpec
from repro.store import RunStore


def small_sweep() -> SweepSpec:
    return SweepSpec(
        algorithms=("known_k_full",),
        grid=((6, 2), (8, 2)),
        schedulers=("sync", "random"),
        trials=1,
        base_seed=11,
        max_steps=2000,
    )


def campaign_spec(**overrides) -> CampaignSpec:
    options = dict(
        kind="sweep",
        sweep=small_sweep(),
        workers=2,
        lease_ttl=2.0,
        unit_timeout=60.0,
        max_retries=3,
        backoff_base=0.02,
        backoff_cap=0.2,
    )
    options.update(overrides)
    return CampaignSpec(**options)


def serial_digest(tmp_path, name="serial") -> str:
    store = RunStore(tmp_path / name)
    execute_sweep(small_sweep(), processes=1, store=store)
    return store.digest()


# ---------------------------------------------------------------------------
# CampaignSpec


class TestCampaignSpec:
    def test_round_trip(self):
        spec = campaign_spec()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        assert CampaignSpec.from_json(spec.to_json()) == spec
        assert spec.content_hash() == CampaignSpec.from_json(
            spec.to_json()
        ).content_hash()

    def test_sweep_units_keyed_by_experiment_spec_hash(self):
        spec = campaign_spec()
        units = spec.build_units()
        assert len(units) == 4
        assert all(unit.kind == "cell" for unit in units)
        assert len({unit.key for unit in units}) == 4
        # Keys ARE the cell ExperimentSpec content hashes: the same key
        # addresses the unit, its lease, and its archived record.
        from repro.experiments.sweep import expand_cells

        expected = [
            cell.to_experiment_spec().content_hash()
            for cell in expand_cells(spec.sweep)
        ]
        assert [unit.key for unit in units] == expected

    def test_fuzz_units_are_shards(self):
        fuzz_spec = FuzzSpec(
            algorithm="known_k_full",
            placement=PlacementSpec(
                kind="random", ring_size=8, agent_count=2, seed=0
            ),
            budget=10,
            placements=2,
            seed=0,
        )
        spec = campaign_spec(kind="fuzz", sweep=None, fuzz=fuzz_spec, shards=3)
        units = spec.build_units()
        shards = shard_specs(fuzz_spec, 3)
        assert [unit.key for unit in units] == [
            shard.content_hash() for shard in shards
        ]
        assert sum(
            FuzzSpec.from_dict(unit.payload["spec"]).budget for unit in units
        ) == fuzz_spec.budget

    def test_work_hash_ignores_fleet_knobs(self):
        # Resuming with a different fleet must find the same ledger.
        a = campaign_spec(workers=2, lease_ttl=2.0, max_retries=3)
        b = campaign_spec(workers=7, lease_ttl=9.0, max_retries=1)
        assert a.work_hash() == b.work_hash()
        assert a.content_hash() != b.content_hash()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            campaign_spec(workers=0)
        with pytest.raises(ConfigurationError):
            campaign_spec(lease_ttl=0.0)
        with pytest.raises(ConfigurationError):
            campaign_spec(max_retries=-1)
        with pytest.raises(ConfigurationError):
            CampaignSpec(kind="sweep", sweep=None)
        with pytest.raises(ConfigurationError):
            CampaignSpec(kind="nope", sweep=small_sweep())

    def test_work_unit_round_trip(self):
        unit = campaign_spec().build_units()[0]
        assert WorkUnit.from_dict(unit.to_dict()) == unit


# ---------------------------------------------------------------------------
# ChaosPlan


class TestChaosPlan:
    def test_parse_round_trip(self):
        plan = parse_chaos_spec("seed=7,kill=0.4,stall=0.1,poison=ab12")
        assert plan.seed == 7
        assert plan.kill == pytest.approx(0.4)
        assert plan.poison == ("ab12",)
        assert ChaosPlan.from_dict(plan.to_dict()) == plan

    def test_parse_rejects_unknown_and_inactive(self):
        with pytest.raises(ReproError):
            parse_chaos_spec("kaboom=1")
        with pytest.raises(ReproError):
            parse_chaos_spec("seed=3")  # injects nothing
        with pytest.raises(ReproError):
            parse_chaos_spec("kill=oops")

    def test_decisions_are_pure(self):
        plan = ChaosPlan(seed=1, kill=0.5, stall=0.2, silence=0.2)
        for attempt in range(1, 6):
            assert plan.decide("unit", attempt) == plan.decide("unit", attempt)

    def test_poison_outranks_probabilities(self):
        plan = ChaosPlan(seed=1, poison=("dead",))
        for attempt in range(1, 10):
            fault = plan.decide("deadbeef", attempt)
            assert fault is not None and fault.kind == "kill"
        assert plan.decide("cafe", 1) is None

    def test_probability_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan(kill=1.5)
        with pytest.raises(ConfigurationError):
            ChaosPlan(stall=-0.1)


# ---------------------------------------------------------------------------
# run_campaign (multi-process; all instances tiny, all chaos pinned)


class TestRunCampaign:
    def test_undisturbed_campaign_matches_serial_sweep(self, tmp_path):
        outcome = run_campaign(campaign_spec(), str(tmp_path / "campaign"))
        assert outcome.exit_code == 0
        assert outcome.completed == 4 and not outcome.quarantined
        assert RunStore(tmp_path / "campaign").digest() == serial_digest(
            tmp_path
        )

    def test_chaos_killed_campaign_converges_byte_identical(self, tmp_path):
        """The tentpole acceptance test: deterministic SIGKILLs mid-cell
        and at unit start, workers replaced, units re-issued — and the
        final store is byte-identical to an undisturbed serial run."""
        chaos = ChaosPlan(seed=1, kill=0.5)
        spec = campaign_spec(lease_ttl=1.0)
        outcome = run_campaign(spec, str(tmp_path / "campaign"), chaos=chaos)
        assert outcome.worker_deaths > 0, "chaos injected nothing"
        assert outcome.reissues > 0
        assert outcome.exit_code == 0
        assert outcome.completed == 4 and not outcome.quarantined
        assert RunStore(tmp_path / "campaign").digest() == serial_digest(
            tmp_path
        )

    def test_poison_unit_quarantined_after_budget(self, tmp_path):
        spec = campaign_spec(lease_ttl=0.8, max_retries=2, backoff_cap=0.1)
        poison_key = spec.build_units()[1].key
        chaos = ChaosPlan(seed=1, poison=(poison_key[:12],))
        outcome = run_campaign(spec, str(tmp_path / "campaign"), chaos=chaos)
        # Quarantined campaigns exit nonzero but finish everything else.
        assert outcome.exit_code == 1
        assert outcome.completed == 3
        assert len(outcome.quarantined) == 1
        report = outcome.quarantined[0]
        assert report["unit"] == poison_key
        assert report["attempts"] == spec.max_retries + 1
        store = RunStore(tmp_path / "campaign")
        artifact = store.quarantine.get(poison_key)
        assert artifact["report"]["state"] == "quarantined"
        assert artifact["unit"]["key"] == poison_key
        ledger = store.campaign_ledger(spec.work_hash())
        assert ledger.quarantined_units() == {poison_key}
        history = [e["event"] for e in ledger.history(poison_key)]
        assert history.count("issue") == spec.max_retries + 1
        assert history[-1] == "quarantine"

    def test_slow_loris_caught_by_unit_timeout(self, tmp_path):
        # stall=1.0: every attempt sleeps past the unit deadline while
        # heartbeating dutifully — only the wall-clock backstop fires.
        spec = campaign_spec(
            sweep=SweepSpec(
                algorithms=("known_k_full",),
                grid=((6, 2),),
                schedulers=("sync",),
                base_seed=11,
                max_steps=2000,
            ),
            workers=1,
            lease_ttl=0.3,
            unit_timeout=0.7,
            max_retries=1,
            backoff_cap=0.05,
        )
        chaos = ChaosPlan(seed=0, stall=1.0, stall_seconds=30.0)
        outcome = run_campaign(spec, str(tmp_path / "campaign"), chaos=chaos)
        assert outcome.exit_code == 1
        assert len(outcome.quarantined) == 1
        assert outcome.quarantined[0]["last_cause"] == "unit-timeout"
        ledger = RunStore(tmp_path / "campaign").campaign_ledger(
            spec.work_hash()
        )
        causes = {
            event["cause"]
            for event in ledger.events()
            if event["event"] == "lease-expired"
        }
        assert causes == {"unit-timeout"}

    def test_heartbeat_silence_expires_lease(self, tmp_path):
        # silence=1.0: the worker stays alive but stops heartbeating;
        # the lease TTL catches it even though the process never died.
        spec = campaign_spec(
            sweep=SweepSpec(
                algorithms=("known_k_full",),
                grid=((6, 2),),
                schedulers=("sync",),
                base_seed=11,
                max_steps=2000,
            ),
            workers=1,
            lease_ttl=0.3,
            unit_timeout=30.0,
            max_retries=1,
            backoff_cap=0.05,
        )
        chaos = ChaosPlan(seed=0, silence=1.0, silence_seconds=30.0)
        outcome = run_campaign(spec, str(tmp_path / "campaign"), chaos=chaos)
        assert outcome.exit_code == 1
        assert outcome.quarantined[0]["last_cause"] == "heartbeat-silence"

    def test_resume_skips_completed_units(self, tmp_path):
        spec = campaign_spec()
        root = str(tmp_path / "campaign")
        first = run_campaign(spec, root)
        assert first.completed == 4
        digest = RunStore(root).digest()
        second = run_campaign(spec, root)
        assert second.completed == 0 and second.cached == 4
        assert second.exit_code == 0
        assert RunStore(root).digest() == digest
        # A different fleet shape still finds the same ledger/progress.
        third = run_campaign(campaign_spec(workers=1, lease_ttl=9.0), root)
        assert third.cached == 4

    def test_stop_when_interrupts_gracefully(self, tmp_path):
        spec = campaign_spec(workers=1)
        root = str(tmp_path / "campaign")
        outcome = run_campaign(
            spec, root, stop_when=lambda counts: counts["completed"] >= 1
        )
        assert outcome.interrupted
        assert outcome.exit_code == 130
        assert 1 <= outcome.completed < 4
        assert "repro campaign --spec" in outcome.resume_command
        # The resume command's spec file exists and round-trips.
        spec_path = outcome.resume_command.split()[3]
        assert CampaignSpec.load(spec_path) == spec
        # Resuming finishes the remainder and reaches the serial digest.
        final = run_campaign(spec, root)
        assert final.exit_code == 0
        assert final.cached == outcome.completed
        assert final.completed == 4 - outcome.completed
        assert RunStore(root).digest() == serial_digest(tmp_path)

    def test_campaign_resume_warns_on_foreign_env(self, tmp_path):
        spec = campaign_spec()
        root = str(tmp_path / "campaign")
        run_campaign(spec, root)
        _doctor_env(tmp_path / "campaign")
        with pytest.warns(ProvenanceWarning, match="different environment"):
            outcome = run_campaign(spec, root)
        assert outcome.cached == 4

    def test_fuzz_campaign_archives_serial_failures(self, tmp_path):
        fuzz_spec = FuzzSpec(
            algorithm="wake_race",
            placement=PlacementSpec(
                kind="random", ring_size=16, agent_count=4, seed=0
            ),
            budget=30,
            placements=2,
            seed=0,
        )
        spec = campaign_spec(
            kind="fuzz", sweep=None, fuzz=fuzz_spec, shards=2,
            unit_timeout=120.0,
        )
        expected = set()
        runs = 0
        for shard in shard_specs(fuzz_spec, 2):
            outcome = fuzz(shard, keep_going=True)
            runs += outcome.runs
            expected.update(f.content_hash for f in outcome.failures)
        root = str(tmp_path / "campaign")
        outcome = run_campaign(spec, root)
        assert outcome.fuzz_runs == runs == fuzz_spec.budget
        assert {f["content_hash"] for f in outcome.failures} == expected
        assert set(RunStore(root).failures.hashes()) == expected
        assert outcome.coverage_states > 0
        # wake_race is the injected bug: finding failures is exit 1.
        assert outcome.exit_code == 1
        # Fuzz shards leave no run records; resume rides the ledger.
        resumed = run_campaign(spec, root)
        assert resumed.cached == 2 and resumed.completed == 0


def _doctor_env(store_root) -> None:
    """Rewrite archived records as if computed on another machine."""
    for shard in store_root.glob("shard-*.jsonl"):
        lines = []
        for raw in shard.read_text(encoding="utf-8").splitlines():
            record = json.loads(raw)
            record["env"] = {"python": "9.9.9", "platform": "elsewhere"}
            lines.append(json.dumps(record, sort_keys=True))
        shard.write_text("\n".join(lines) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------------
# Graceful interruption of the underlying executors (satellite)


class TestSweepInterruption:
    def test_keyboard_interrupt_flushes_and_hints(self, tmp_path, monkeypatch):
        """^C mid-sweep: completed cells are archived, the raised
        CampaignInterrupted carries honest partial accounting and the
        exact way to finish, and a later resume completes the rest."""
        import repro.experiments.sweep as sweep_module

        real_worker = sweep_module._record_for_cell
        calls = {"count": 0}

        def explode_on_third(indexed_cell):
            if calls["count"] >= 2:
                raise KeyboardInterrupt()
            calls["count"] += 1
            return real_worker(indexed_cell)

        monkeypatch.setattr(
            sweep_module, "_record_for_cell", explode_on_third
        )
        store = RunStore(tmp_path / "store")
        with pytest.raises(CampaignInterrupted) as info:
            execute_sweep(small_sweep(), processes=1, store=store)
        interrupt = info.value
        assert interrupt.outcome is not None
        assert len(interrupt.outcome.rows) == 2
        assert interrupt.outcome.executed == 2
        assert "resume=True" in interrupt.resume_hint
        store.refresh()
        assert len(store) == 2  # flushed before the interrupt surfaced
        monkeypatch.setattr(sweep_module, "_record_for_cell", real_worker)
        outcome = execute_sweep(small_sweep(), processes=1, store=store)
        assert outcome.cached == 2 and outcome.executed == 2

    def test_storeless_interrupt_hints_at_store(self, monkeypatch):
        import repro.experiments.sweep as sweep_module

        def explode(indexed_cell):
            raise KeyboardInterrupt()

        monkeypatch.setattr(sweep_module, "_row_for_cell", explode)
        with pytest.raises(CampaignInterrupted) as info:
            execute_sweep(small_sweep(), processes=1)
        assert "re-run with a store" in info.value.resume_hint

    def test_sweep_resume_warns_on_foreign_env(self, tmp_path):
        store = RunStore(tmp_path / "store")
        execute_sweep(small_sweep(), processes=1, store=store)
        _doctor_env(tmp_path / "store")
        fresh = RunStore(tmp_path / "store")
        with pytest.warns(ProvenanceWarning, match="pass resume=False"):
            outcome = execute_sweep(small_sweep(), processes=1, store=fresh)
        assert outcome.cached == 4 and outcome.executed == 0
