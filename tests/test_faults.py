"""Link-fault models threaded through the verification ladder.

The paper assumes reliable FIFO links; :mod:`repro.ring.faults` opens
that assumption with a frozen, content-hashable :class:`LinkSpec`
(bounded delay, bounded loss, bounded duplication).  These tests pin
the two promises that make faulty experiments first-class:

* **determinism** — every fault decision is a blake2b function of
  ``(seed, kind, global move ordinal)``, so faulty runs replay bit for
  bit, fork exactly, and model-check with jobs-invariant verdicts;
* **identity off** — ``LinkSpec(0, 0, 0)`` and no spec at all are the
  same experiment: byte-identical activation logs, metrics, packed
  states, content hashes and store digests across every algorithm and
  every scheduler family (the fault-free identity gate), so archived
  reliable runs keep their hashes forever.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.experiments.runner import build_engine, run_experiment
from repro.fuzz.coverage import enabled_pattern
from repro.mc.checker import check_interleavings
from repro.mc.parallel import check_frontier
from repro.registry import algorithm_names, build_scheduler, scheduler_names
from repro.ring.faults import (
    PHANTOM,
    LinkSpec,
    fault_fraction,
    format_link_spec,
    is_link_actor,
    link_actor,
    link_node,
    parse_link_spec,
)
from repro.ring.placement import random_placement
from repro.sim.batch import batch_supported
from repro.spec import ExperimentSpec, PlacementSpec
from repro.store import RunStore, cached_run


def _placement(n=8, k=2, seed=0):
    return random_placement(n, k, random.Random(seed))


def _spec(links=None, n=8, k=2, seed=0, algorithm="unknown", scheduler="sync"):
    return ExperimentSpec(
        algorithm=algorithm,
        placement=PlacementSpec(kind="random", ring_size=n, agent_count=k, seed=seed),
        scheduler=scheduler,
        links=links,
    )


# ---------------------------------------------------------------------------
# LinkSpec: the value object
# ---------------------------------------------------------------------------


class TestLinkSpec:
    def test_roundtrip(self):
        spec = LinkSpec(delay=2, loss=1, dup=3, seed=7)
        assert LinkSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict() == {"delay": 2, "loss": 1, "dup": 3, "seed": 7}

    def test_defaults_are_inactive(self):
        assert not LinkSpec().active
        assert not LinkSpec(seed=9).active
        for field in ("delay", "loss", "dup"):
            assert LinkSpec(**{field: 1}).active

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(delay=-1)
        with pytest.raises(ConfigurationError):
            LinkSpec(loss="2")  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            LinkSpec(dup=True)  # bool is not an int here
        with pytest.raises(ConfigurationError):
            LinkSpec.from_dict({"delya": 1})

    def test_parse_format_inverse(self):
        for text, expected in [
            ("delay=2,seed=7", LinkSpec(delay=2, seed=7)),
            ("delay=1,loss=1,dup=1", LinkSpec(1, 1, 1)),
            (" loss=3 , seed=0 ", LinkSpec(loss=3)),
        ]:
            spec = parse_link_spec(text)
            assert spec == expected
            assert parse_link_spec(format_link_spec(spec)) == spec

    def test_parse_rejects_noop_and_garbage(self):
        # A faulty-looking flag that injects nothing would silently test
        # the reliable model — rejected loudly instead.
        with pytest.raises(ReproError):
            parse_link_spec("seed=3")
        with pytest.raises(ReproError):
            parse_link_spec("delay")
        with pytest.raises(ReproError):
            parse_link_spec("delay=fast")
        with pytest.raises(ReproError):
            parse_link_spec("jitter=2")

    def test_format_of_inactive_is_empty(self):
        assert format_link_spec(None) == ""
        assert format_link_spec(LinkSpec()) == ""

    def test_draws_are_pure_functions(self):
        # Same (seed, kind, ordinal) -> same draw, everywhere, forever.
        assert fault_fraction(7, "loss", 3) == fault_fraction(7, "loss", 3)
        assert fault_fraction(7, "loss", 3) != fault_fraction(7, "dup", 3)
        assert fault_fraction(7, "loss", 3) != fault_fraction(8, "loss", 3)
        assert fault_fraction(7, "loss", 3) != fault_fraction(7, "loss", 4)
        spec = LinkSpec(delay=3, loss=1, dup=1, seed=5)
        for ordinal in range(64):
            assert 0 <= spec.draw_delay(ordinal) <= 3
            assert spec.draw_loss(ordinal) == spec.draw_loss(ordinal)
            assert spec.draw_dup(ordinal) == spec.draw_dup(ordinal)
        assert LinkSpec(delay=0).draw_delay(11) == 0

    def test_link_actor_codec(self):
        for node in range(6):
            actor = link_actor(node)
            assert actor < 0
            assert is_link_actor(actor)
            assert link_node(actor) == node
        assert not is_link_actor(0)
        assert not is_link_actor(3)


# ---------------------------------------------------------------------------
# Spec containers: normalisation and hash stability
# ---------------------------------------------------------------------------


class TestSpecThreading:
    def test_inactive_links_normalised_away(self):
        # LinkSpec(0,0,0) == reliable links: the spec container drops it
        # so equal experiments stay equal objects.
        spec = _spec(links=LinkSpec(seed=5))
        assert spec.links is None
        assert "links" not in spec.to_dict()

    def test_reliable_hash_untouched(self):
        # The invariant that keeps every archived store valid: adding
        # the links field must not move the hash of reliable specs.
        bare = _spec()
        inactive = _spec(links=LinkSpec())
        assert bare.content_hash() == inactive.content_hash()
        assert bare.to_dict() == inactive.to_dict()
        # Old serialised forms (no "links" key) still parse to the same
        # experiment.
        assert ExperimentSpec.from_dict(bare.to_dict()) == bare

    def test_active_links_roundtrip_and_distinguish(self):
        faulty = _spec(links=LinkSpec(delay=2, seed=7))
        assert faulty.links == LinkSpec(delay=2, seed=7)
        assert faulty.to_dict()["links"] == {"delay": 2, "loss": 0, "dup": 0, "seed": 7}
        assert ExperimentSpec.from_dict(faulty.to_dict()) == faulty
        assert faulty.content_hash() != _spec().content_hash()
        # Different fault seeds are different experiments.
        other_seed = _spec(links=LinkSpec(delay=2, seed=8))
        assert faulty.content_hash() != other_seed.content_hash()

    def test_links_must_be_a_linkspec(self):
        with pytest.raises(ConfigurationError):
            _spec(links={"delay": 1})  # type: ignore[arg-type]

    def test_batch_backend_gated(self):
        assert batch_supported(_spec(algorithm="known_k_full")) is None
        reason = batch_supported(
            _spec(algorithm="known_k_full", links=LinkSpec(delay=1))
        )
        assert reason == "link faults require the object engine"


# ---------------------------------------------------------------------------
# Engine semantics under faults
# ---------------------------------------------------------------------------


class TestFaultyEngine:
    def test_inactive_spec_builds_reliable_engine(self):
        engine = build_engine(
            "unknown", _placement(), build_scheduler("sync"), links=LinkSpec()
        )
        assert engine.links is None
        assert engine.ring.faults is None

    def test_delay_schedules_link_actors(self):
        engine = build_engine(
            "unknown",
            _placement(seed=3),
            build_scheduler("random", seed=3),
            validate_enabledness=True,
            links=LinkSpec(delay=2, seed=7),
        )
        engine.run()
        assert engine.quiescent
        log = engine.activation_log
        actors = [a for a in log if is_link_actor(a)]
        assert actors, "a delay-2 run never scheduled a link actor"
        assert all(-engine.ring.size <= a <= -1 for a in actors)
        # At quiescence every delivery drained: no buffered agents left.
        faults = engine.ring.faults
        assert all(not buffer for buffer in faults.buffers)
        assert faults.ordinal > 0

    def test_faulty_run_replays_bit_for_bit(self):
        def run():
            engine = build_engine(
                "unknown",
                _placement(seed=5),
                build_scheduler("chaos", seed=11),
                links=LinkSpec(delay=2, dup=1, seed=4),
            )
            engine.run()
            return engine.activation_log, engine.snapshot().packed()

        assert run() == run()

    def test_loss_budget_and_lost_agents(self):
        spec = LinkSpec(delay=1, loss=1, seed=0)
        saw_loss = False
        for seed in range(24):
            engine = build_engine(
                "unknown",
                _placement(n=10, k=3, seed=seed),
                build_scheduler("random", seed=seed),
                validate_enabledness=True,
                links=spec,
            )
            engine.run()
            faults = engine.ring.faults
            assert faults.loss_used <= spec.loss
            assert faults.loss_used == len(faults.lost)
            for agent_id in faults.lost:
                saw_loss = True
                assert agent_id in engine.agent_ids
                # A lost agent is nowhere on the ring: locate must fail
                # loudly, never silently report a stale position.
                with pytest.raises(ReproError):
                    engine.ring.locate(agent_id)
                assert agent_id not in engine.enabled_agents()
        assert saw_loss, "no seed in 24 ever consumed the loss budget"

    def test_dup_budget_and_phantom_consumption(self):
        spec = LinkSpec(delay=1, dup=2, seed=1)
        saw_dup = False
        for seed in range(16):
            engine = build_engine(
                "unknown",
                _placement(n=10, k=3, seed=seed),
                build_scheduler("random", seed=seed),
                validate_enabledness=True,
                links=spec,
            )
            engine.run()
            faults = engine.ring.faults
            assert faults.dup_used <= spec.dup
            saw_dup = saw_dup or faults.dup_used > 0
            # Quiescence means every phantom was consumed: none left at
            # any queue head or in any buffer.
            for node in range(engine.ring.size):
                contents = engine.ring.queue_contents(node)
                assert not contents or contents[0] != PHANTOM
            assert all(
                entry[0] != PHANTOM or entry[1] > 0
                for buffer in faults.buffers
                for entry in buffer
            )
        assert saw_dup, "no seed in 16 ever spawned a phantom"

    def test_fork_is_exact_under_faults(self):
        # The model checker's branch-on-fork must copy the fault state
        # exactly: both branches replay the same draws from the same
        # ordinal and land in the same packed state.
        engine = build_engine(
            "unknown",
            _placement(seed=2),
            build_scheduler("sync"),
            record_views=True,
            validate_enabledness=True,
            links=LinkSpec(delay=2, dup=1, seed=9),
        )
        engine.run_rounds(4)
        assert not engine.quiescent
        fork = engine.fork()
        for branch in (engine, fork):
            for _ in range(12):
                enabled = branch.enabled_agents()
                if not enabled:
                    break
                branch.step(enabled[0])
        assert engine.activation_log == fork.activation_log
        assert engine.snapshot().packed() == fork.snapshot().packed()
        assert engine.ring.faults.ordinal == fork.ring.faults.ordinal

    def test_enabledness_differential_across_specs(self):
        # The incremental enabled set must agree with the O(k) oracle
        # after every batch, for every fault combination.
        for links in (
            LinkSpec(delay=1),
            LinkSpec(delay=3, seed=2),
            LinkSpec(delay=1, loss=2, seed=3),
            LinkSpec(delay=2, dup=2, seed=4),
            LinkSpec(delay=2, loss=1, dup=1, seed=5),
        ):
            engine = build_engine(
                "unknown",
                _placement(n=9, k=3, seed=1),
                build_scheduler("chaos", seed=6),
                validate_enabledness=True,
                links=links,
            )
            engine.run()
            assert engine.quiescent

    def test_snapshot_encodes_fault_state(self):
        reliable = build_engine("unknown", _placement(seed=2), build_scheduler("sync"))
        faulty = build_engine(
            "unknown",
            _placement(seed=2),
            build_scheduler("sync"),
            links=LinkSpec(delay=2, seed=0),
        )
        assert reliable.snapshot().faults is None
        snap = faulty.snapshot()
        assert snap.faults is not None
        # The canonical form grows a link-faults trailer so memoised
        # faulty states can never collide with reliable ones.
        assert any(
            isinstance(part, tuple) and part and part[0] == "link-faults"
            for part in snap.canonical()
        )
        assert reliable.snapshot().packed() != snap.packed()

    def test_run_experiment_with_delay_still_uniform(self):
        result = run_experiment(
            "unknown",
            _placement(seed=7),
            build_scheduler("random", seed=7),
            links=LinkSpec(delay=2, seed=7),
        )
        assert result.report is not None
        assert result.report.ok, result.report.describe()


# ---------------------------------------------------------------------------
# Coverage keys (fuzzer) see fault state
# ---------------------------------------------------------------------------


class TestCoverageKeys:
    def test_reliable_pattern_shape_unchanged(self):
        engine = build_engine("unknown", _placement(seed=1), build_scheduler("sync"))
        pattern = enabled_pattern(engine)
        assert len(pattern) == 2

    def test_faulty_pattern_gains_fault_dimensions(self):
        engine = build_engine(
            "unknown",
            _placement(seed=1),
            build_scheduler("sync"),
            links=LinkSpec(delay=2, seed=0),
        )
        patterns = {enabled_pattern(engine)}
        assert all(len(p) == 3 for p in patterns)
        engine.run_until(
            lambda e: any(b for b in e.ring.faults.buffers), max_rounds=200
        )
        statuses, _enabled, actors = enabled_pattern(engine)
        assert "B" in statuses
        assert actors >= 1


# ---------------------------------------------------------------------------
# Model checking under faults
# ---------------------------------------------------------------------------


class TestFaultyModelChecking:
    PLACEMENT_SEED = 0
    N, K = 5, 2

    def _placement(self):
        return random_placement(self.N, self.K, random.Random(self.PLACEMENT_SEED))

    def test_delay_strictly_enlarges_state_space(self):
        placement = self._placement()
        reliable = check_interleavings(
            "unknown", placement, por=False, stop_at_first=False
        )
        faulty = check_interleavings(
            "unknown",
            placement,
            por=False,
            stop_at_first=False,
            links=LinkSpec(delay=1, seed=0),
        )
        assert reliable.ok
        assert faulty.ok
        assert faulty.explored > reliable.explored

    def test_por_forced_off_under_faults(self):
        # The sleep-set reduction is unsound under faults (the shared
        # ordinal draw stream makes "independent" moves interfere), so
        # por=True must silently degrade to full expansion.
        placement = self._placement()
        links = LinkSpec(delay=1, seed=0)
        reduced = check_interleavings(
            "unknown", placement, por=True, stop_at_first=False, links=links
        )
        full = check_interleavings(
            "unknown", placement, por=False, stop_at_first=False, links=links
        )
        assert reduced.por_skipped == 0
        assert reduced.explored == full.explored
        assert sorted(reduced.terminal_keys) == sorted(full.terminal_keys)

    def test_frontier_verdict_is_jobs_invariant(self):
        placement = self._placement()
        links = LinkSpec(delay=1, seed=0)
        one = check_frontier(
            "unknown", placement, jobs=1, stop_at_first=False, links=links
        )
        two = check_frontier(
            "unknown", placement, jobs=2, stop_at_first=False, links=links
        )
        assert one.verdict == two.verdict == "ok"
        assert one.explored == two.explored
        assert one.terminals == two.terminals

    def test_frontier_agrees_with_dfs(self):
        placement = self._placement()
        links = LinkSpec(delay=1, seed=0)
        dfs = check_interleavings(
            "unknown", placement, por=False, stop_at_first=False, links=links
        )
        bfs = check_frontier(
            "unknown", placement, jobs=1, stop_at_first=False, links=links
        )
        assert dfs.verdict == bfs.verdict
        assert dfs.explored == bfs.explored


# ---------------------------------------------------------------------------
# Satellite: the fault-free identity gate
# ---------------------------------------------------------------------------


class TestFaultFreeIdentityGate:
    """``LinkSpec(0,0,0)`` and no spec must be the SAME experiment.

    Byte-identical activation logs, metrics, packed final states and
    run rows across every algorithm x every scheduler family — the gate
    that lets the links field ride along without ever perturbing the
    reliable ladder or invalidating archived hashes.
    """

    @pytest.mark.parametrize("algorithm", algorithm_names())
    @pytest.mark.parametrize("scheduler", scheduler_names())
    def test_engine_identity(self, algorithm, scheduler):
        placement = _placement(n=8, k=2, seed=4)
        runs = []
        for links in (None, LinkSpec(0, 0, 0)):
            engine = build_engine(
                algorithm,
                placement,
                build_scheduler(scheduler, seed=13),
                links=links,
            )
            engine.run()
            runs.append(
                (
                    engine.activation_log,
                    engine.metrics,
                    engine.snapshot().packed(),
                    engine.snapshot().canonical_key(),
                )
            )
        assert runs[0] == runs[1]

    def test_run_rows_and_hashes_identical(self):
        bare = _spec(algorithm="known_k_full", scheduler="random")
        inactive = _spec(
            algorithm="known_k_full", scheduler="random", links=LinkSpec()
        )
        assert bare.content_hash() == inactive.content_hash()
        assert run_experiment(bare).row() == run_experiment(inactive).row()

    def test_store_digests_identical(self, tmp_path):
        spec_pairs = [
            (_spec(algorithm="known_n_full"), _spec(algorithm="known_n_full", links=LinkSpec())),
            (_spec(algorithm="unknown", scheduler="burst"),
             _spec(algorithm="unknown", scheduler="burst", links=LinkSpec(seed=2))),
        ]
        digests = []
        for column in (0, 1):
            store = RunStore(tmp_path / f"store{column}")
            for pair in spec_pairs:
                cached_run(pair[column], store)
            digests.append(store.digest())
            store.close()
        assert digests[0] == digests[1]


# ---------------------------------------------------------------------------
# CLI threading
# ---------------------------------------------------------------------------


class TestCli:
    def test_run_accepts_links(self, capsys):
        from repro.cli import main

        code = main(
            ["run", "--algorithm", "unknown", "--n", "8", "--k", "2",
             "--links", "delay=2,seed=7"]
        )
        assert code == 0
        assert "True" in capsys.readouterr().out

    def test_bad_links_is_a_usage_error(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--n", "8", "--k", "2", "--links", "seed=3"])
        assert excinfo.value.code == 2
        assert "links" in capsys.readouterr().err

    def test_spec_embeds_links(self, capsys):
        from repro.cli import main

        code = main(
            ["spec", "--algorithm", "unknown", "--n", "8", "--k", "2",
             "--links", "delay=1,loss=1"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["links"] == {"delay": 1, "loss": 1, "dup": 0, "seed": 0}
        # The spec round-trips through from_dict to the same experiment.
        assert ExperimentSpec.from_dict(payload).links == LinkSpec(delay=1, loss=1)

    def test_mc_links_header_and_verdict(self, capsys):
        from repro.cli import main

        code = main(
            ["mc", "--algorithm", "unknown", "--n", "5", "--k", "2",
             "--links", "delay=1", "--keep-going"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "under link faults" in out

    def test_query_compact(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        assert main(
            ["run", "--algorithm", "known_k_full", "--n", "12", "--k", "2",
             "--store", store_dir]
        ) == 0
        capsys.readouterr()
        assert main(["query", "--store", store_dir, "--compact"]) == 0
        out = capsys.readouterr().out
        assert "reclaimed" in out
        assert "unchanged" in out
        # The compacted store still answers queries.
        assert main(["query", "--store", store_dir, "--failed"]) == 0
