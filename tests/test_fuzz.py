"""Tests for the coverage-guided schedule fuzzer (repro.fuzz)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import build_engine, run_experiment
from repro.fuzz import (
    Corpus,
    CorpusEntry,
    CoverageMap,
    FailureCase,
    FuzzSpec,
    coverage_key,
    enabled_pattern,
    fuzz,
    mutate_schedule,
    replay_spec_string,
    splice,
)
from repro.mc import PropertyOracle, drive_schedule, shrink_schedule
from repro.ring.placement import Placement
from repro.sim.scheduler import RandomScheduler, RecordingScheduler, ReplayScheduler
from repro.spec import PlacementSpec
from repro.store import FailureArchive


def wake_race_spec(**overrides) -> FuzzSpec:
    """A small deterministic campaign that must find the injected bug."""
    options = dict(
        algorithm="wake_race",
        placement=PlacementSpec(kind="random", ring_size=16, agent_count=4, seed=0),
        budget=120,
        placements=2,
        seed=0,
    )
    options.update(overrides)
    return FuzzSpec(**options)


class TestFuzzSpec:
    def test_dict_round_trip(self):
        spec = wake_race_spec(budget=77, corpus_size=9, mutations=2)
        assert FuzzSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = wake_race_spec()
        assert FuzzSpec.from_json(spec.to_json()) == spec

    def test_content_hash_is_stable_and_sensitive(self):
        spec = wake_race_spec()
        assert spec.content_hash() == wake_race_spec().content_hash()
        assert spec.content_hash() != spec.with_options(budget=121).content_hash()
        assert spec.content_hash() != spec.with_options(seed=1).content_hash()

    def test_unknown_keys_rejected(self):
        data = wake_race_spec().to_dict()
        data["extra"] = 1
        with pytest.raises(ConfigurationError, match="unknown keys"):
            FuzzSpec.from_dict(data)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="budget"):
            wake_race_spec(budget=0)
        with pytest.raises(ConfigurationError, match="placements"):
            wake_race_spec(placements=0)
        with pytest.raises(ConfigurationError, match="corpus_size"):
            wake_race_spec(corpus_size=1)
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            wake_race_spec(algorithm="nope")

    def test_pinned_placement_kind_forces_one_placement(self):
        with pytest.raises(ConfigurationError, match="placements must be 1"):
            FuzzSpec(
                algorithm="wake_race",
                placement=PlacementSpec(kind="distances", distances=(1, 2, 5)),
                placements=2,
            )

    def test_build_placement_is_deterministic_and_varied(self):
        spec = wake_race_spec(placements=3)
        first = [spec.build_placement(i) for i in range(3)]
        second = [spec.build_placement(i) for i in range(3)]
        assert first == second
        assert len({p.homes for p in first}) > 1
        with pytest.raises(ConfigurationError, match="out of range"):
            spec.build_placement(3)

    def test_experiment_spec_uses_replay_scheduler(self):
        spec = wake_race_spec()
        placement = spec.build_placement(0)
        experiment = spec.experiment_spec(placement, (1, 0, 2))
        assert experiment.scheduler == "replay:log=1-0-2"
        assert experiment.build_placement() == placement
        assert spec.experiment_spec(placement, ()).scheduler == "replay"

    def test_replay_spec_string(self):
        assert replay_spec_string(()) == "replay"
        assert replay_spec_string((3, 1, 4)) == "replay:log=3-1-4"


class TestMutations:
    def test_deterministic_for_a_seed(self):
        schedule = tuple(random.Random(0).choices(range(4), k=60))
        first = mutate_schedule(random.Random(7), schedule, (0, 1, 2, 3))
        second = mutate_schedule(random.Random(7), schedule, (0, 1, 2, 3))
        assert first == second

    def test_outputs_stay_in_the_agent_alphabet(self):
        agents = (0, 1, 2)
        rng = random.Random(3)
        schedule: tuple = ()
        for _ in range(200):
            schedule = mutate_schedule(rng, schedule, agents)
            assert all(agent in agents for agent in schedule)

    def test_splice_is_prefix_plus_suffix(self):
        rng = random.Random(1)
        out = splice(rng, (1, 1, 1, 1), (2, 2, 2, 2))
        assert set(out) <= {1, 2}
        ones = [i for i, v in enumerate(out) if v == 1]
        twos = [i for i, v in enumerate(out) if v == 2]
        assert not ones or not twos or max(ones) < min(twos)


class TestShrink:
    def test_shrinks_to_the_minimal_core(self):
        # Fails iff the schedule contains at least three 7s.
        def still_fails(candidate):
            return list(candidate).count(7) >= 3

        noisy = (1, 7, 2, 2, 7, 3, 3, 3, 7, 4, 7, 5)
        shrunk = shrink_schedule(noisy, still_fails)
        assert shrunk == (7, 7, 7)

    def test_one_minimality(self):
        def still_fails(candidate):
            return 5 in candidate and 9 in candidate

        shrunk = shrink_schedule((1, 5, 2, 9, 5, 3), still_fails)
        assert still_fails(shrunk)
        for index in range(len(shrunk)):
            assert not still_fails(shrunk[:index] + shrunk[index + 1:])

    def test_empty_wins_when_everything_fails(self):
        assert shrink_schedule((1, 2, 3), lambda c: True) == ()

    def test_eval_budget_returns_a_failing_schedule(self):
        def still_fails(candidate):
            return list(candidate).count(1) >= 5

        noisy = tuple([1, 2] * 50)
        shrunk = shrink_schedule(noisy, still_fails, max_evals=5)
        assert still_fails(shrunk)


class TestCoverage:
    def test_coverage_key_is_process_independent(self):
        # Pinned literal: BLAKE2b-8 of repr, not builtin hash(), so the
        # key survives PYTHONHASHSEED and can merge across processes.
        assert coverage_key(("x", 1)) == 1422071402036486208

    def test_observe_reports_novelty_once(self):
        placement = Placement(ring_size=8, homes=(0, 3))
        engine = build_engine("known_k_full", placement)
        coverage = CoverageMap()
        assert coverage.observe(engine) == 2
        assert coverage.observe(engine) == 0
        engine.step(engine.enabled_agents()[0])
        assert coverage.observe(engine) >= 1
        assert coverage.states == 2

    def test_enabled_pattern_abstracts_agent_identity(self):
        placement = Placement(ring_size=8, homes=(0, 3))
        engine = build_engine("known_k_full", placement)
        statuses, enabled = enabled_pattern(engine)
        assert statuses == ("Q", "Q")  # both agents head their home queues
        assert enabled == 2

    def test_merge_and_export(self):
        first, second = CoverageMap(), CoverageMap()
        first.merge_keys([1, 2], [10])
        second.merge_keys([2, 3], [11])
        second.merge_keys(*first.export_keys())
        assert second.states == 3
        assert second.patterns == 2


class TestCorpus:
    def test_bounded_with_weakest_evicted(self):
        corpus = Corpus(2)
        for run, gain in enumerate((5, 1, 3)):
            corpus.add(
                CorpusEntry(
                    placement_index=0, schedule=(run,), gain=gain, run_index=run
                )
            )
        assert len(corpus) == 2
        assert sorted(entry.gain for entry in corpus.entries) == [3, 5]

    def test_pick_is_deterministic_with_seeded_rng(self):
        corpus = Corpus(4)
        for run in range(4):
            corpus.add(
                CorpusEntry(
                    placement_index=0, schedule=(run,), gain=1, run_index=run
                )
            )
        assert corpus.pick(random.Random(1)) == corpus.pick(random.Random(1))
        assert corpus.pick_pair(random.Random(2)) is not None


class TestDriveSchedule:
    def test_matches_replay_scheduler_exactly(self):
        placement = Placement(ring_size=10, homes=(0, 4, 7))
        oracle = PropertyOracle("known_k_full", placement)
        recorded = drive_schedule(oracle, (), max_steps=10_000)
        assert recorded.ok and recorded.quiesced
        engine = build_engine(
            "known_k_full", placement, scheduler=ReplayScheduler(recorded.executed)
        )
        engine.run()
        assert engine.activation_log == recorded.executed

    def test_fork_root_replays_identically(self):
        placement = Placement(ring_size=10, homes=(0, 4, 7))
        oracle = PropertyOracle("known_k_full", placement)
        baseline = drive_schedule(oracle, (2, 2, 1), max_steps=10_000)
        forked = drive_schedule(
            oracle, (2, 2, 1), max_steps=10_000, engine=oracle.fork_root()
        )
        again = drive_schedule(
            oracle, (2, 2, 1), max_steps=10_000, engine=oracle.fork_root()
        )
        assert forked == baseline == again


class TestRecordingScheduler:
    def test_records_inner_decisions_and_replays(self):
        placement = Placement(ring_size=10, homes=(0, 4, 7))
        recorder = RecordingScheduler(RandomScheduler(seed=5))
        engine = build_engine("known_k_full", placement, scheduler=recorder)
        engine.run()
        assert recorder.log  # every decision captured
        assert len(recorder.batches) == len(recorder.log)  # one pick per batch
        assert not recorder.counts_time
        # The recorded decision log replays to the identical execution.
        replay = build_engine(
            "known_k_full", placement, scheduler=ReplayScheduler(recorder.log)
        )
        replay.run()
        assert replay.activation_log == engine.activation_log


class TestFuzzer:
    def test_finds_the_wake_race_bug(self):
        outcome = fuzz(wake_race_spec())
        assert outcome.found
        failure = outcome.failures[0]
        assert failure.kind == "terminal"
        assert failure.property_name == "uniform-terminal"
        assert failure.replay_verified
        assert len(failure.shrunk) <= len(failure.schedule)
        assert failure.algorithm == "wake_race"

    def test_failure_spec_replays_to_the_violation(self):
        outcome = fuzz(wake_race_spec())
        failure = outcome.failures[0]
        experiment = failure.experiment_spec()
        assert experiment.content_hash() == failure.content_hash
        result = run_experiment(experiment)
        assert not result.ok  # deterministic reproduction, no fuzzer in the loop

    def test_campaigns_are_deterministic(self):
        first = fuzz(wake_race_spec(budget=40))
        second = fuzz(wake_race_spec(budget=40))
        assert first == second

    def test_correct_algorithm_stays_clean_and_covers(self):
        spec = FuzzSpec(
            algorithm="known_k_full",
            placement=PlacementSpec(kind="random", ring_size=10, agent_count=3, seed=0),
            budget=25,
            placements=2,
            seed=0,
        )
        outcome = fuzz(spec)
        assert not outcome.found
        assert outcome.complete and outcome.runs == 25
        assert outcome.states > 100
        assert outcome.corpus_size > 0
        assert outcome.history[-1]["run"] == 25

    def test_keep_going_collects_and_deduplicates(self):
        outcome = fuzz(wake_race_spec(budget=20), keep_going=True)
        assert outcome.complete and outcome.runs == 20
        assert outcome.found

    def test_failure_case_round_trips(self):
        outcome = fuzz(wake_race_spec())
        failure = outcome.failures[0]
        assert FailureCase.from_dict(failure.to_dict()) == failure

    def test_fuzz_parallel_shards_and_merges(self):
        from repro.fuzz import fuzz_parallel

        spec = FuzzSpec(
            algorithm="known_k_full",
            placement=PlacementSpec(kind="random", ring_size=8, agent_count=2, seed=0),
            budget=8,
            placements=2,
            seed=0,
        )
        outcome = fuzz_parallel(spec, 2)
        assert outcome.runs == 8  # both shard budgets spent
        assert outcome.complete and not outcome.found
        assert outcome.states > 0 and outcome.patterns > 0
        # Shards derive distinct seeds, so the merged coverage is a
        # genuine union, not double-counted duplicates.
        solo = fuzz(spec.with_options(budget=4, seed=spec.derive_seed("shard|0")))
        assert outcome.states >= solo.states


class TestFailureArchive:
    def test_put_get_idempotent(self, tmp_path):
        archive = FailureArchive(tmp_path / "failures")
        payload = {"content_hash": "ab" * 32, "message": "boom"}
        path = archive.put("ab" * 32, payload)
        assert path.exists()
        assert archive.put("ab" * 32, {"content_hash": "ab" * 32}) == path
        assert archive.get("ab" * 32) == payload  # first write wins
        assert "ab" * 32 in archive and len(archive) == 1
        assert archive.resolve("ab") == ["ab" * 32]

    def test_mismatched_hash_rejected(self, tmp_path):
        archive = FailureArchive(tmp_path)
        with pytest.raises(ConfigurationError, match="does not match"):
            archive.put("aa" * 32, {"content_hash": "bb" * 32})

    def test_bad_hash_rejected(self, tmp_path):
        archive = FailureArchive(tmp_path)
        with pytest.raises(ConfigurationError, match="bad failure"):
            archive.put("../escape", {"content_hash": "../escape"})

    def test_missing_archive_without_create(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            FailureArchive(tmp_path / "absent", create=False)
        with pytest.raises(KeyError):
            FailureArchive(tmp_path).get("cc" * 32)

    def test_run_store_exposes_its_archive(self, tmp_path):
        from repro.store import RunStore

        store = RunStore(tmp_path)
        archive = store.failures
        archive.put("cd" * 32, {"content_hash": "cd" * 32})
        assert (tmp_path / "failures" / f"{'cd' * 32}.json").exists()
        # Failure artifacts never pollute the run-record shards.
        store.refresh()
        assert len(store) == 0


class TestFuzzerIntegration:
    def test_archives_failures_like_the_cli(self, tmp_path):
        from repro.store import RunStore

        outcome = fuzz(wake_race_spec())
        archive = RunStore(tmp_path).failures
        for failure in outcome.failures:
            archive.put(failure.content_hash, failure.to_dict())
        stored = FailureCase.from_dict(archive.get(outcome.failures[0].content_hash))
        assert stored == outcome.failures[0]

    def test_hard_selftest_placement_found_with_tiny_budget(self):
        # n=8 homes=(0,1,3): every sampled scheduler deploys uniformly
        # (the mc selftest pins that) and uniform-random schedules hit
        # the race with probability ~1/2000 per run; the adversary-
        # seeded, coverage-guided campaign finds it within a handful.
        spec = FuzzSpec(
            algorithm="wake_race",
            placement=PlacementSpec(kind="distances", distances=(1, 2, 5)),
            budget=60,
            placements=1,
            seed=0,
        )
        outcome = fuzz(spec)
        assert outcome.found
        failure = outcome.failures[0]
        assert failure.replay_verified
        assert failure.homes == (0, 1, 3)
        # And the shrunk schedule is a genuine (non-degenerate) race.
        assert 0 < len(failure.shrunk) <= len(failure.schedule)


class TestNoShrink:
    def test_unshrunk_failures_say_so(self):
        outcome = fuzz(wake_race_spec(), shrink=False)
        failure = outcome.failures[0]
        assert failure.shrunk == failure.schedule
        assert "unshrunk" in failure.describe()
        assert failure.replay_verified  # replay verification still runs
