"""Tests for the Theorem 5 construction (E3, Figure 7)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.impossibility import (
    demonstrate_impossibility,
    expanded_placement,
    lemma1_window_agreement,
)
from repro.ring.placement import placement_from_distances

BASE = placement_from_distances((5, 7, 4, 8))  # n = 24, k = 4, d = 6


class TestExpandedPlacement:
    def test_structure(self):
        expanded = expanded_placement(BASE, q=2)
        # R' has 2qn + 2n nodes and k(q+1) agents.
        assert expanded.ring_size == 2 * 2 * 24 + 2 * 24
        assert expanded.agent_count == 4 * 3

    def test_prefix_repeats_base_layout(self):
        expanded = expanded_placement(BASE, q=2)
        for block in range(3):
            block_homes = tuple(
                h - block * 24
                for h in expanded.homes
                if block * 24 <= h < (block + 1) * 24
            )
            assert block_homes == BASE.homes

    def test_second_half_is_empty(self):
        expanded = expanded_placement(BASE, q=2)
        boundary = 2 * 24 + 24  # qn + n
        assert all(h < boundary for h in expanded.homes)

    def test_rejects_bad_q(self):
        with pytest.raises(ConfigurationError):
            expanded_placement(BASE, q=0)


class TestLemma1:
    def test_full_agreement_during_base_execution(self):
        agreements = lemma1_window_agreement(BASE, rounds=24)
        assert all(value == 1.0 for value in agreements)


class TestDemonstration:
    def test_deceived_agents_fail_uniformity(self):
        outcome = demonstrate_impossibility(BASE)
        assert outcome.failed_as_predicted
        assert not outcome.report.ok

    def test_window_gaps_show_base_spacing(self):
        # Halted agents inside the repeated window sit at spacing d
        # (possibly with collisions), never at the required 2d.
        outcome = demonstrate_impossibility(BASE)
        assert outcome.base_gap == 6
        assert outcome.expanded_gap == 12
        assert outcome.observed_prefix_gaps  # non-empty window
        assert all(gap != outcome.expanded_gap for gap in outcome.observed_prefix_gaps)
        assert any(gap == outcome.base_gap for gap in outcome.observed_prefix_gaps)

    def test_q_covers_execution_length(self):
        outcome = demonstrate_impossibility(BASE)
        assert outcome.q * BASE.ring_size >= outcome.rounds_in_base

    def test_works_for_logspace_algorithm_too(self):
        outcome = demonstrate_impossibility(BASE, algorithm="known_k_logspace")
        assert outcome.failed_as_predicted

    def test_requires_integral_gap(self):
        with pytest.raises(ConfigurationError):
            demonstrate_impossibility(placement_from_distances((3, 4, 6)))
