"""CLI tests for `repro fuzz` and the failure-artifact pipeline."""

from __future__ import annotations

import json

from repro.cli import main
from repro.fuzz import FuzzSpec
from repro.spec import PlacementSpec


class TestFuzzCommand:
    def test_finds_wake_race_and_archives_the_failure(self, capsys, tmp_path):
        store = tmp_path / "store"
        out_json = tmp_path / "fuzz.json"
        code = main(
            [
                "fuzz", "--algorithm", "wake_race", "--n", "16", "--k", "4",
                "--budget", "120", "--placements", "2",
                "--store", str(store), "--json", str(out_json),
            ]
        )
        output = capsys.readouterr().out
        assert code == 1  # a violation was found
        assert "FAILURE" in output
        assert "replay" in output
        assert "coverage growth" in output
        payload = json.loads(out_json.read_text())
        assert payload["failures"], "outcome JSON must carry the failures"
        failure = payload["failures"][0]
        assert failure["replay_verified"] is True
        # The artifact is archived under failures/<spec hash>.json.
        artifact = store / "failures" / f"{failure['content_hash']}.json"
        assert artifact.exists()
        assert json.loads(artifact.read_text()) == failure

    def test_archived_spec_replays_through_repro_run(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert (
            main(
                [
                    "fuzz", "--algorithm", "wake_race", "--n", "16", "--k", "4",
                    "--budget", "120", "--placements", "2", "--store", str(store),
                ]
            )
            == 1
        )
        capsys.readouterr()
        [artifact] = list((store / "failures").glob("*.json"))
        spec_file = tmp_path / "replay-spec.json"
        spec_file.write_text(json.dumps(json.loads(artifact.read_text())["spec"]))
        # The minimal counterexample reproduces with zero fuzzing
        # machinery: a stock replay run that fails verification.
        assert main(["run", "--spec", str(spec_file)]) == 1
        output = capsys.readouterr().out
        assert "False" in output

    def test_clean_algorithm_exits_zero(self, capsys):
        code = main(
            [
                "fuzz", "--algorithm", "known_k_full", "--n", "10", "--k", "3",
                "--budget", "20", "--placements", "2",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "no violations" in output

    def test_explicit_distances_pin_one_placement(self, capsys):
        code = main(
            [
                "fuzz", "--algorithm", "wake_race", "--distances", "1,2,5",
                "--budget", "60",
            ]
        )
        output = capsys.readouterr().out
        assert code == 1
        assert "homes=(0, 1, 3)" in output

    def test_spec_file_round_trip(self, capsys, tmp_path):
        spec = FuzzSpec(
            algorithm="known_k_full",
            placement=PlacementSpec(kind="random", ring_size=8, agent_count=2, seed=3),
            budget=10,
            placements=1,
        )
        spec_file = tmp_path / "campaign.json"
        spec_file.write_text(spec.to_json())
        assert main(["fuzz", "--spec", str(spec_file)]) == 0
        assert spec.content_hash()[:16] in capsys.readouterr().out

    def test_malformed_spec_is_a_one_line_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(["fuzz", "--spec", str(bad)])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1
