"""Unit tests for the ring substrate: FIFO links, tokens, occupancy."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.ring.network import Ring


class TestStructure:
    def test_size_and_successor(self):
        ring = Ring(5)
        assert ring.size == 5
        assert ring.successor(0) == 1
        assert ring.successor(4) == 0

    def test_forward_distance(self):
        ring = Ring(10)
        assert ring.forward_distance(2, 7) == 5
        assert ring.forward_distance(7, 2) == 5
        assert ring.forward_distance(3, 3) == 0

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            Ring(0)


class TestTokens:
    def test_release_is_monotone(self):
        ring = Ring(4)
        assert ring.tokens_at(2) == 0
        ring.release_token(2)
        ring.release_token(2)
        assert ring.tokens_at(2) == 2
        assert ring.token_counts == (0, 0, 2, 0)


class TestQueues:
    def test_fifo_order(self):
        ring = Ring(4)
        ring.enqueue(10, 1)
        ring.enqueue(11, 1)
        assert ring.queue_head(1) == 10
        assert ring.queue_contents(1) == (10, 11)
        ring.dequeue(10, 1)
        assert ring.queue_head(1) == 11

    def test_dequeue_non_head_is_an_overtake(self):
        ring = Ring(4)
        ring.enqueue(10, 1)
        ring.enqueue(11, 1)
        with pytest.raises(SimulationError):
            ring.dequeue(11, 1)

    def test_dequeue_empty(self):
        ring = Ring(4)
        with pytest.raises(SimulationError):
            ring.dequeue(1, 0)
        with pytest.raises(SimulationError):
            ring.queue_head(0)

    def test_all_queues_empty(self):
        ring = Ring(3)
        assert ring.all_queues_empty()
        ring.enqueue(1, 0)
        assert not ring.all_queues_empty()

    def test_iter_in_transit(self):
        ring = Ring(3)
        ring.enqueue(1, 0)
        ring.enqueue(2, 2)
        assert sorted(ring.iter_in_transit()) == [1, 2]


class TestOccupancy:
    def test_settle_and_depart(self):
        ring = Ring(4)
        ring.settle(7, 3)
        assert ring.staying_at(3) == {7}
        assert ring.locate(7) == ("node", 3)
        assert ring.occupied_nodes() == [3]
        ring.depart(7, 3)
        assert ring.staying_at(3) == set()

    def test_double_placement_rejected(self):
        ring = Ring(4)
        ring.settle(7, 3)
        with pytest.raises(SimulationError):
            ring.settle(7, 2)
        with pytest.raises(SimulationError):
            ring.enqueue(7, 1)

    def test_depart_missing_agent(self):
        ring = Ring(4)
        with pytest.raises(SimulationError):
            ring.depart(9, 0)

    def test_locate_unknown_agent(self):
        ring = Ring(4)
        with pytest.raises(SimulationError):
            ring.locate(42)

    def test_queue_then_settle_cycle(self):
        ring = Ring(4)
        ring.enqueue(5, 2)
        assert ring.locate(5) == ("queue", 2)
        ring.dequeue(5, 2)
        ring.settle(5, 2)
        assert ring.locate(5) == ("node", 2)
        ring.depart(5, 2)
        ring.enqueue(5, 3)
        assert ring.locate(5) == ("queue", 3)

    def test_staying_at_returns_copy(self):
        ring = Ring(4)
        ring.settle(1, 0)
        view = ring.staying_at(0)
        view.add(99)
        assert ring.staying_at(0) == {1}
