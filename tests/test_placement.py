"""Unit tests for initial-placement generators."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.ring.placement import (
    Placement,
    equidistant_placement,
    periodic_placement,
    placement_from_distances,
    quarter_packed_placement,
    random_aperiodic_block,
    random_placement,
)


class TestPlacement:
    def test_normalises_and_sorts_homes(self):
        placement = Placement(ring_size=10, homes=(7, 12, 3))
        assert placement.homes == (2, 3, 7)

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            Placement(ring_size=10, homes=(1, 11))

    def test_rejects_overflow(self):
        with pytest.raises(ConfigurationError):
            Placement(ring_size=3, homes=(0, 1, 2, 3))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Placement(ring_size=3, homes=())

    def test_distances_and_degree(self):
        placement = placement_from_distances((1, 2, 3, 1, 2, 3))
        assert placement.ring_size == 12
        assert placement.distances == (1, 2, 3, 1, 2, 3)
        assert placement.symmetry_degree == 2

    def test_describe_mentions_basics(self):
        text = Placement(ring_size=8, homes=(0, 4)).describe()
        assert "n=8" in text and "k=2" in text


class TestGenerators:
    def test_random_placement_distinct(self):
        rng = random.Random(1)
        placement = random_placement(30, 10, rng)
        assert len(set(placement.homes)) == 10
        assert placement.ring_size == 30

    def test_random_placement_overflow(self):
        with pytest.raises(ConfigurationError):
            random_placement(4, 5, random.Random(0))

    def test_equidistant_is_uniform(self):
        placement = equidistant_placement(16, 4)
        assert placement.distances == (4, 4, 4, 4)
        assert placement.symmetry_degree == 4

    def test_equidistant_uneven(self):
        placement = equidistant_placement(10, 4)
        assert sorted(placement.distances) == [2, 2, 3, 3]

    def test_quarter_packed(self):
        placement = quarter_packed_placement(40, 10)
        assert placement.homes == tuple(range(10))

    def test_quarter_packed_overflow(self):
        with pytest.raises(ConfigurationError):
            quarter_packed_placement(16, 5)

    def test_periodic_placement_degree(self):
        placement = periodic_placement((1, 2, 3), 3)
        assert placement.ring_size == 18
        assert placement.symmetry_degree == 3

    def test_periodic_rejects_periodic_block(self):
        with pytest.raises(ConfigurationError):
            periodic_placement((2, 2), 2)

    def test_periodic_rejects_bad_repetitions(self):
        with pytest.raises(ConfigurationError):
            periodic_placement((1, 2), 0)

    def test_random_aperiodic_block(self):
        rng = random.Random(5)
        block = random_aperiodic_block(4, 6, rng)
        assert len(block) == 4
        placement = periodic_placement(block, 2)
        assert placement.symmetry_degree == 2

    def test_random_aperiodic_block_length_one(self):
        assert len(random_aperiodic_block(1, 3, random.Random(0))) == 1

    def test_random_aperiodic_block_impossible(self):
        with pytest.raises(ConfigurationError):
            random_aperiodic_block(3, 1, random.Random(0))

    @given(st.integers(2, 40), st.integers(1, 10), st.integers(0, 999))
    def test_random_placement_property(self, n, k, seed):
        k = min(k, n)
        placement = random_placement(n, k, random.Random(seed))
        assert sum(placement.distances) == n
        assert len(placement.homes) == k
        assert 1 <= placement.symmetry_degree <= k
