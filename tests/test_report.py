"""Tests for the one-shot report generator and its CLI command."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.report import PROFILES, generate_report


class TestGenerateReport:
    def test_quick_profile_structure(self):
        text = generate_report("quick")
        assert "# Experiment report" in text
        assert "## Table 1 sweeps" in text
        assert "## Result 4 adaptivity" in text
        assert "## Theorem 1 lower bound" in text
        assert "## Theorem 5 impossibility construction" in text
        assert "## Figure configurations" in text
        assert "## Rendezvous contrast" in text

    def test_quick_profile_claims(self):
        text = generate_report("quick")
        # Every algorithm section must report all-uniform.
        assert text.count("all runs uniform: **True**") == 4
        # The impossibility construction must fail uniformity.
        assert "uniform on R': **False**" in text

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            generate_report("gigantic")

    def test_profiles_registry(self):
        assert set(PROFILES) == {"quick", "full"}
        assert PROFILES["full"].n_sweep[-1] > PROFILES["quick"].n_sweep[-1]


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        code = main(["report", "--profile", "quick"])
        output = capsys.readouterr().out
        assert code == 0
        assert "# Experiment report" in output

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        code = main(["report", "--profile", "quick", "--output", str(target)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert target.read_text().startswith("# Experiment report")
