"""Tests for the figure registry, ASCII charts and the engine round API."""

from __future__ import annotations

import pytest

from repro.analysis.chart import bar_chart, scaling_chart
from repro.errors import ConfigurationError
from repro.experiments.figures import FIGURES, figure
from repro.experiments.runner import build_engine, run_experiment
from repro.ring.placement import equidistant_placement


class TestFigureRegistry:
    def test_registry_names(self):
        assert {
            "figure_1a",
            "figure_1b",
            "figure_2",
            "figure_3",
            "figure_4",
            "figure_5",
            "figure_8_9",
            "figure_11",
            "theorem_5_base",
        } <= set(FIGURES)

    def test_symmetry_degrees_match_paper(self):
        assert figure("figure_1a").symmetry_degree == 1
        assert figure("figure_1b").symmetry_degree == 2
        assert figure("figure_5").symmetry_degree == 3
        assert figure("figure_11").symmetry_degree == 2

    def test_figure_2_is_already_uniform(self):
        config = figure("figure_2")
        assert config.placement.ring_size == 16
        assert config.expected_gap_low == config.expected_gap_high == 4

    def test_unknown_figure_lists_options(self):
        with pytest.raises(KeyError, match="figure_1a"):
            figure("figure_42")

    @pytest.mark.parametrize("name", sorted(FIGURES))
    def test_every_figure_is_solvable_by_every_algorithm(self, name):
        config = figure(name)
        for algorithm in ("known_k_full", "known_k_logspace", "unknown"):
            result = run_experiment(algorithm, config.placement)
            assert result.ok, f"{algorithm} on {name}"
            gaps = set(result.report.gaps)
            assert gaps <= {config.expected_gap_low, config.expected_gap_high}


class TestCharts:
    def test_bar_chart_scaling(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].endswith("1")
        assert "##########" in lines[1]  # the max bar is full width
        assert lines[0].count("#") == 5

    def test_bar_chart_empty(self):
        assert bar_chart([], []) == "(no data)"

    def test_bar_chart_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [-1.0])

    def test_bar_chart_zero_values(self):
        text = bar_chart(["x"], [0.0])
        assert "| 0" in text.replace("  ", " ")

    def test_scaling_chart_slope(self):
        text = scaling_chart([2, 4, 8], [4, 8, 16], x_name="n", y_name="moves")
        assert "slope of moves vs n: 1.00" in text

    def test_scaling_chart_expected_annotation(self):
        text = scaling_chart([2, 4], [2, 4], expected_slope=1)
        assert "expected ~1" in text


class TestEngineRoundApi:
    def test_run_until_condition(self):
        engine = build_engine("known_k_full", equidistant_placement(12, 3))
        fired = engine.run_until(lambda e: e.metrics.total_moves >= 5)
        assert fired
        assert engine.metrics.total_moves >= 5
        assert not engine.quiescent

    def test_run_until_quiescence_returns_predicate_value(self):
        engine = build_engine("known_k_full", equidistant_placement(12, 3))
        fired = engine.run_until(lambda e: False)
        assert not fired
        assert engine.quiescent

    def test_iter_rounds_terminates(self):
        engine = build_engine("known_k_full", equidistant_placement(12, 3))
        rounds = sum(1 for _ in engine.iter_rounds())
        assert engine.quiescent
        assert rounds == engine.metrics.rounds

    def test_iter_rounds_observation(self):
        engine = build_engine("known_k_full", equidistant_placement(12, 3))
        move_counts = [e.metrics.total_moves for e in engine.iter_rounds()]
        assert move_counts == sorted(move_counts)  # monotone
