"""CLI tests for `repro campaign` and the fault-tolerance satellites:
worker-count validation, graceful interrupt reporting, store digests.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import CampaignInterrupted
from repro.experiments.sweep import SweepOutcome
from repro.store import RunStore

SWEEP_FLAGS = [
    "--algorithms", "known_k_full",
    "--grid", "6x2,8x2",
    "--schedulers", "sync,random",
    "--seed", "11",
]


class TestCampaignCommand:
    def test_campaign_matches_psweep_digest(self, tmp_path, capsys):
        campaign_store = str(tmp_path / "campaign")
        serial_store = str(tmp_path / "serial")
        code = main(
            ["campaign", *SWEEP_FLAGS, "--workers", "2",
             "--lease-ttl", "2", "--backoff-base", "0.02",
             "--store", campaign_store]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 completed" in out and "0 quarantined" in out
        assert main(
            ["psweep", *SWEEP_FLAGS, "--jobs", "1", "--store", serial_store]
        ) == 0
        capsys.readouterr()
        assert main(["query", "--store", campaign_store, "--digest"]) == 0
        digest_a = capsys.readouterr().out.strip()
        assert main(["query", "--store", serial_store, "--digest"]) == 0
        digest_b = capsys.readouterr().out.strip()
        assert len(digest_a) == 64
        assert digest_a == digest_b

    def test_campaign_chaos_converges(self, tmp_path, capsys):
        # Deterministic kills (seed pinned): workers die, units
        # re-issue, the campaign still converges cleanly.
        code = main(
            ["campaign", *SWEEP_FLAGS, "--workers", "2",
             "--lease-ttl", "1", "--max-retries", "5",
             "--backoff-base", "0.02", "--chaos", "seed=1,kill=0.4",
             "--store", str(tmp_path / "store")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fault injection: chaos(seed=1 kill=0.4)" in out
        assert "4 completed" in out

    def test_campaign_poison_quarantines_and_exits_nonzero(
        self, tmp_path, capsys
    ):
        from repro.campaign import CampaignSpec
        from repro.experiments.sweep import SweepSpec

        sweep = SweepSpec(
            algorithms=("known_k_full",),
            grid=((6, 2), (8, 2)),
            schedulers=("sync", "random"),
            base_seed=11,
        )
        poison = CampaignSpec(kind="sweep", sweep=sweep).build_units()[0].key
        store = str(tmp_path / "store")
        code = main(
            ["campaign", *SWEEP_FLAGS, "--workers", "2",
             "--lease-ttl", "1", "--max-retries", "1",
             "--backoff-base", "0.02",
             "--chaos", f"kill=0,poison={poison[:12]}",
             "--store", store]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "QUARANTINED" in out
        assert "quarantine/" in out
        assert "3 completed" in out  # the rest of the campaign finished
        assert RunStore(store).quarantine.hashes() == [poison]

    def test_campaign_spec_resume_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            ["campaign", *SWEEP_FLAGS, "--workers", "1", "--store", store]
        ) == 0
        capsys.readouterr()
        from repro.campaign import CampaignSpec
        from repro.experiments.sweep import SweepSpec

        sweep = SweepSpec(
            algorithms=("known_k_full",),
            grid=((6, 2), (8, 2)),
            schedulers=("sync", "random"),
            base_seed=11,
        )
        spec = CampaignSpec(kind="sweep", sweep=sweep, workers=1)
        spec_path = (
            tmp_path / "store" / "campaign" / f"{spec.work_hash()}.spec.json"
        )
        assert spec_path.exists()
        code = main(
            ["campaign", "--spec", str(spec_path), "--store", store]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 cached" in out

    def test_rejects_bad_chaos_spec(self, tmp_path, capsys):
        code = main(
            ["campaign", *SWEEP_FLAGS, "--chaos", "frobnicate=1",
             "--store", str(tmp_path / "store")]
        )
        assert code == 2
        assert "unknown chaos key" in capsys.readouterr().err


class TestWorkerCountValidation:
    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_campaign_workers(self, value, tmp_path, capsys):
        code = main(
            ["campaign", "--workers", value, "--store", str(tmp_path / "s")]
        )
        assert code == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_psweep_jobs(self, value, capsys):
        code = main(["psweep", "--grid", "6x2", "--jobs", value])
        assert code == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_fuzz_jobs(self, value, capsys):
        code = main(["fuzz", "--budget", "5", "--jobs", value])
        assert code == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_campaign_shards(self, tmp_path, capsys):
        code = main(
            ["campaign", "--shards", "0", "--store", str(tmp_path / "s")]
        )
        assert code == 2
        assert "--shards must be >= 1" in capsys.readouterr().err


class TestInterruptReporting:
    def test_psweep_interrupt_reports_and_exits_130(
        self, tmp_path, monkeypatch, capsys
    ):
        import repro.experiments.sweep as sweep_module

        def interrupted_sweep(spec, processes=None, **kwargs):
            raise CampaignInterrupted(
                "sweep interrupted: 2 of 4 cells done",
                outcome=SweepOutcome(
                    rows=[{}, {}], total=4, executed=2, cached=0
                ),
                resume_hint="re-run the same sweep with resume=True",
            )

        monkeypatch.setattr(sweep_module, "execute_sweep", interrupted_sweep)
        code = main(
            ["psweep", "--grid", "6x2", "--store", str(tmp_path / "s")]
        )
        out = capsys.readouterr().out
        assert code == 130
        assert "interrupted: sweep interrupted" in out
        assert "progress: 2/4 cells done" in out
        assert "resume: re-run the same sweep" in out

    def test_fuzz_interrupt_reports_and_exits_130(
        self, monkeypatch, capsys
    ):
        import repro.fuzz as fuzz_package

        def interrupted_fuzz(spec, shards, **kwargs):
            raise CampaignInterrupted(
                "fuzzing interrupted",
                resume_hint="re-run the same command",
            )

        monkeypatch.setattr(fuzz_package, "fuzz_parallel", interrupted_fuzz)
        code = main(["fuzz", "--budget", "8", "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 130
        assert "interrupted: fuzzing interrupted" in out
        assert "resume: re-run the same command" in out


class TestQueryDigest:
    def test_digest_is_stable_and_order_free(self, tmp_path, capsys):
        store_a = str(tmp_path / "a")
        store_b = str(tmp_path / "b")
        # Same cells, different execution orders / shard layouts.
        assert main(
            ["psweep", *SWEEP_FLAGS, "--jobs", "1", "--store", store_a]
        ) == 0
        assert main(
            ["psweep", "--algorithms", "known_k_full", "--grid", "8x2,6x2",
             "--schedulers", "random,sync", "--seed", "11",
             "--jobs", "1", "--store", store_b]
        ) == 0
        capsys.readouterr()
        assert main(["query", "--store", store_a, "--digest"]) == 0
        digest_a = capsys.readouterr().out.strip()
        assert main(["query", "--store", store_b, "--digest"]) == 0
        digest_b = capsys.readouterr().out.strip()
        assert digest_a == digest_b
