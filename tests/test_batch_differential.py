"""Differential-oracle gate: the batch backend vs the object engine.

The columnar engine (:mod:`repro.sim.batch`) promises *byte identity*
with the object engine, not statistical agreement.  These tests hold it
to that across all four core algorithms and all five scheduler
families, at three strictness levels:

* **strict** — identical activation logs, identical full
  :class:`Metrics` (every per-agent dict and counter), identical final
  positions, per shared seeds,
* **payload** — identical archived result payloads through the
  :func:`repro.sim.batch.runner.run_batch` spec-level entry point
  (the representation every store consumer sees), including the
  ``k=1`` and ``n=k`` edge geometries,
* **failure** — a trial that exceeds its step budget raises the same
  exception type with the same message on both engines.

``validate=True`` (the production sampling gate) is exercised both
ways: passing on honest runs and raising :class:`BackendMismatch`
when the oracle is forged to disagree.
"""

from __future__ import annotations

import pytest

from repro.errors import BackendMismatch, SimulationLimitExceeded
from repro.experiments.runner import build_engine, run_experiment
from repro.sim.batch import BatchEngine, run_batch
from repro.sim.batch.runner import validation_sample
from repro.spec import ExperimentSpec, PlacementSpec
from repro.store.records import result_to_payload

ALGORITHMS = ("known_k_full", "known_n_full", "known_k_logspace", "unknown")

SCHEDULER_SPECS = (
    "sync",
    "random",
    "burst:burst=3",
    "chaos:epoch=5",
    "laggard:victims=0,patience=4",
)


def _spec(
    algorithm: str,
    n: int,
    k: int,
    scheduler: str,
    seed: int,
    **overrides,
) -> ExperimentSpec:
    return ExperimentSpec(
        algorithm=algorithm,
        placement=PlacementSpec(
            kind="random", ring_size=n, agent_count=k, seed=seed
        ),
        scheduler=scheduler,
        scheduler_seed=seed ^ 0x5DEECE66D,
        **overrides,
    )


def _batch_engine(specs, **kwargs) -> BatchEngine:
    first = specs[0]
    return BatchEngine(
        algorithm=first.algorithm,
        placements=[spec.build_placement() for spec in specs],
        schedulers=[spec.build_scheduler() for spec in specs],
        max_steps=[spec.max_steps for spec in specs],
        memory_audit_interval=first.memory_audit_interval,
        collect_metrics=first.collect_metrics,
        **kwargs,
    )


def _metrics_tuple(metrics):
    return (
        dict(metrics.moves_per_agent),
        dict(metrics.activations_per_agent),
        dict(metrics.memory_bits_per_agent),
        metrics.messages_sent,
        metrics.messages_delivered,
        metrics.tokens_released,
        metrics.rounds,
    )


@pytest.mark.parametrize("scheduler", SCHEDULER_SPECS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_strict_parity_log_metrics_positions(algorithm, scheduler):
    specs = [
        _spec(algorithm, 24, 6, scheduler, seed=100 + trial)
        for trial in range(3)
    ]
    batch = _batch_engine(specs, record_log=True)
    batch.run()
    for trial, spec in enumerate(specs):
        oracle = build_engine(spec)
        oracle.run()
        assert list(batch.activation_log_for(trial)) == list(
            oracle.activation_log
        ), f"{algorithm}/{scheduler} trial {trial}: activation logs differ"
        assert _metrics_tuple(batch.metrics_for(trial)) == _metrics_tuple(
            oracle.metrics
        ), f"{algorithm}/{scheduler} trial {trial}: metrics differ"
        assert (
            batch.final_positions_for(trial) == oracle.final_positions()
        ), f"{algorithm}/{scheduler} trial {trial}: final positions differ"


@pytest.mark.parametrize("n,k", [(12, 1), (6, 6), (16, 4), (25, 5)])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_payload_parity_including_edge_geometries(algorithm, n, k):
    specs = [
        _spec(algorithm, n, k, scheduler, seed=7 + index)
        for index, scheduler in enumerate(SCHEDULER_SPECS)
        for _ in range(2)
    ]
    # One batch per scheduler family (a batch shares one cell).
    for start in range(0, len(specs), 2):
        cell = specs[start : start + 2]
        results = run_batch(cell)
        for spec, result in zip(cell, results):
            assert result_to_payload(result) == result_to_payload(
                run_experiment(spec)
            )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_failure_parity_step_budget(algorithm):
    specs = [_spec(algorithm, 12, 4, "random", seed=25, max_steps=10)]
    with pytest.raises(SimulationLimitExceeded) as batch_error:
        run_batch(specs)
    with pytest.raises(SimulationLimitExceeded) as object_error:
        run_experiment(specs[0])
    assert str(batch_error.value) == str(object_error.value)


def test_collect_metrics_off_parity():
    specs = [
        _spec("known_k_full", 20, 5, "random", seed=s, collect_metrics=False)
        for s in (1, 2, 3)
    ]
    batch = _batch_engine(specs, record_log=True)
    batch.run()
    for trial, spec in enumerate(specs):
        oracle = build_engine(spec)
        oracle.run()
        assert list(batch.activation_log_for(trial)) == list(
            oracle.activation_log
        )
        assert batch.final_positions_for(trial) == oracle.final_positions()
        assert _metrics_tuple(batch.metrics_for(trial)) == _metrics_tuple(
            oracle.metrics
        )  # both empty: disabled collection is disabled on both engines
        assert batch.metrics_for(trial).total_activations == 0


def test_memory_audit_interval_parity():
    specs = [
        _spec(
            "known_k_logspace", 18, 6, "sync", seed=s, memory_audit_interval=5
        )
        for s in (4, 5)
    ]
    results = run_batch(specs)
    for spec, result in zip(specs, results):
        assert result_to_payload(result) == result_to_payload(
            run_experiment(spec)
        )


def test_validate_gate_passes_on_honest_runs():
    specs = [_spec("unknown", 16, 4, "chaos:epoch=5", seed=s) for s in range(4)]
    run_batch(specs, validate=True)  # must not raise


def test_validate_gate_raises_on_forged_oracle(monkeypatch):
    import repro.experiments.runner as runner_module

    specs = [_spec("known_k_full", 16, 4, "sync", seed=s) for s in range(3)]
    honest = run_batch(specs)

    def forged(spec):
        import dataclasses

        return dataclasses.replace(
            honest[0], total_moves=honest[0].total_moves + 1
        )

    monkeypatch.setattr(runner_module, "run_experiment", forged)
    with pytest.raises(BackendMismatch):
        run_batch(specs, validate=True)


def test_validation_sample_covers_boundaries():
    assert validation_sample(0) == []
    assert validation_sample(1) == [0]
    assert validation_sample(2) == [0, 1]
    sample = validation_sample(100, samples=3)
    assert sample[0] == 0 and sample[-1] == 99 and len(sample) == 3
    # Deterministic: same inputs, same indices, every call.
    assert validation_sample(100, samples=3) == sample
