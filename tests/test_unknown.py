"""Tests for Algorithms 4-6 (no knowledge of k or n) — E4, E12-E15."""

from __future__ import annotations


import pytest

from repro.analysis.sequences import is_fourfold_repetition
from repro.experiments.runner import build_engine, run_experiment
from repro.experiments.table1 import symmetry_placement
from repro.ring.placement import (
    Placement,
    equidistant_placement,
    periodic_placement,
    placement_from_distances,
    quarter_packed_placement,
    random_placement,
)
from repro.sim.scheduler import BurstScheduler, LaggardScheduler, RandomScheduler

ALGO = "unknown"


def _figure9_placement() -> Placement:
    """Figure 9: n = 27, k = 9 with the periodic-looking subsequence.

    Agent a2's neighbourhood reads distances (1,3,1,3,1,3,1,3), so it
    misestimates n' = 4; the whole sequence contains an 11 so the ring
    is aperiodic and some agent estimates 27.
    """
    return placement_from_distances((11, 1, 3, 1, 3, 1, 3, 1, 3))


class TestEstimatingPhase:
    def test_figure8_misestimate(self):
        # An agent whose first eight distances are (1,3)^4 stops with
        # n' = 4, k' = 2 (Figure 8).
        placement = _figure9_placement()
        engine = build_engine(ALGO, placement)
        engine.run()
        estimates = sorted(
            engine.agent(agent_id).n_est for agent_id in engine.agent_ids
        )
        # Everyone ends with the correct estimate after corrections...
        assert estimates == [27] * 9
        # ...and the run still achieved uniform deployment.
        from repro.analysis.verification import verify_uniform_deployment

        assert verify_uniform_deployment(engine, require_suspended=True).ok

    def test_figure9_some_agent_misestimates_then_recovers(self):
        # Track the estimate history: at least one agent must first
        # adopt n' = 4 (the (1,3)^4 trap) and later hold n' = 27.
        placement = _figure9_placement()
        engine = build_engine(ALGO, placement)
        saw_misestimate = False
        for _ in range(10_000):
            if engine.quiescent:
                break
            engine.run_rounds(1)
            for agent_id in engine.agent_ids:
                if engine.agent(agent_id).n_est == 4:
                    saw_misestimate = True
        assert engine.quiescent
        assert saw_misestimate
        assert all(engine.agent(a).n_est == 27 for a in engine.agent_ids)

    def test_lemma3_wrong_estimates_at_most_half(self, rng):
        # Any wrong estimate n' satisfies n' <= n/2 (Lemma 3).
        for _ in range(10):
            n = rng.randint(8, 40)
            k = rng.randint(2, min(8, n // 2))
            placement = random_placement(n, k, rng)
            engine = build_engine(ALGO, placement)
            engine.run()
            for agent_id in engine.agent_ids:
                estimate = engine.agent(agent_id).n_est
                fundamental = n // placement.symmetry_degree
                assert estimate == fundamental or estimate <= n // 2

    def test_lemma4_correct_agent_exists_in_aperiodic_ring(self, rng):
        # In aperiodic rings at least one agent estimates n (Lemma 4);
        # our engine runs to quiescence, by which point Lemma 5 forces
        # *all* agents to n.  Check the stronger final property.
        for _ in range(10):
            placement = random_placement(rng.randint(10, 36), rng.randint(2, 6), rng)
            if placement.symmetry_degree != 1:
                continue
            engine = build_engine(ALGO, placement)
            engine.run()
            assert all(
                engine.agent(a).n_est == placement.ring_size
                for a in engine.agent_ids
            )

    def test_estimates_store_fourfold_sequences(self, rng):
        placement = random_placement(24, 4, rng)
        engine = build_engine(ALGO, placement)
        engine.run()
        for agent_id in engine.agent_ids:
            agent = engine.agent(agent_id)
            assert is_fourfold_repetition(tuple(agent.D))
            assert agent.k_est == len(agent.D) // 4
            assert agent.n_est == sum(agent.D[: agent.k_est])


class TestPeriodicRings:
    def test_figure11_fundamental_estimate(self):
        # Figure 11: a (6,2)-node ring — n = 12, fundamental ring N = 6.
        # All agents estimate 6 and still reach uniform deployment.
        placement = periodic_placement((1, 2, 3), 2)
        engine = build_engine(ALGO, placement)
        engine.run()
        assert all(engine.agent(a).n_est == 6 for a in engine.agent_ids)
        from repro.analysis.verification import verify_uniform_deployment

        assert verify_uniform_deployment(engine, require_suspended=True).ok

    def test_figure11_total_moves_twelve_circuits(self):
        # Each agent moves 12 * N + deployment: for the (6,2) ring every
        # agent makes 12*6 = 72 moves before its final (<= 2N) walk.
        placement = periodic_placement((1, 2, 3), 2)
        engine = build_engine(ALGO, placement)
        engine.run()
        for agent_id in engine.agent_ids:
            agent = engine.agent(agent_id)
            assert 72 <= agent.nodes <= 72 + 2 * 6

    @pytest.mark.parametrize("degree", [2, 3, 4])
    def test_periodic_rings_various_degrees(self, degree):
        placement = periodic_placement((2, 5, 3), degree)
        result = run_experiment(ALGO, placement)
        assert result.ok, result.report.describe()

    def test_symmetry_placement_helper(self):
        placement = symmetry_placement(48, 8, 4, seed=9)
        assert placement.symmetry_degree == 4
        assert run_experiment(ALGO, placement).ok


class TestCorrectness:
    @pytest.mark.parametrize(
        "distances",
        [
            (5, 7, 4, 8),
            (1, 4, 2, 1, 2, 2),
            (1, 2, 3, 1, 2, 3),
            (3, 3, 3),
            (1, 1, 1, 9),
            (11, 1, 3, 1, 3, 1, 3, 1, 3),  # Figure 9
        ],
    )
    def test_exact_configurations(self, distances):
        result = run_experiment(ALGO, placement_from_distances(distances))
        assert result.ok, result.report.describe()

    @pytest.mark.parametrize("n,k", [(12, 4), (13, 4), (17, 5), (9, 9), (7, 2), (26, 6)])
    def test_random_placements(self, n, k, rng):
        for _ in range(3):
            result = run_experiment(ALGO, random_placement(n, k, rng))
            assert result.ok, result.report.describe()

    def test_single_agent(self):
        result = run_experiment(ALGO, Placement(ring_size=5, homes=(1,)))
        assert result.ok

    def test_quarter_packed(self):
        result = run_experiment(ALGO, quarter_packed_placement(32, 8))
        assert result.ok

    def test_equidistant(self):
        result = run_experiment(ALGO, equidistant_placement(20, 5))
        assert result.ok


class TestSchedulers:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_schedules(self, seed, rng):
        placement = random_placement(20, 5, rng)
        result = run_experiment(ALGO, placement, scheduler=RandomScheduler(seed))
        assert result.ok, result.report.describe()

    def test_laggard_adversary(self, rng):
        placement = placement_from_distances((11, 1, 3, 1, 3, 1, 3, 1, 3))
        result = run_experiment(
            ALGO, placement, scheduler=LaggardScheduler([1, 2], patience=80, seed=7)
        )
        assert result.ok

    def test_burst_adversary(self, rng):
        placement = random_placement(18, 4, rng)
        result = run_experiment(ALGO, placement, scheduler=BurstScheduler(30, seed=1))
        assert result.ok

    def test_figure9_under_many_schedules(self):
        placement = _figure9_placement()
        for seed in range(5):
            result = run_experiment(
                ALGO, placement, scheduler=RandomScheduler(seed)
            )
            assert result.ok, f"seed {seed}"


class TestAdaptivity:
    def test_moves_shrink_with_symmetry_degree(self):
        # Theorem 6: O(kn/l) moves — doubling l should roughly halve
        # the total moves on the same (n, k).
        results = {
            degree: run_experiment(
                ALGO, symmetry_placement(48, 8, degree, seed=3)
            )
            for degree in (1, 2, 4)
        }
        assert results[2].total_moves < results[1].total_moves * 0.75
        assert results[4].total_moves < results[2].total_moves * 0.75

    def test_time_shrinks_with_symmetry_degree(self):
        results = {
            degree: run_experiment(
                ALGO, symmetry_placement(48, 8, degree, seed=3)
            )
            for degree in (1, 4)
        }
        assert results[4].ideal_time < results[1].ideal_time * 0.5

    def test_memory_shrinks_with_symmetry_degree(self):
        results = {
            degree: run_experiment(
                ALGO,
                symmetry_placement(48, 8, degree, seed=3),
                memory_audit_interval=1,
            )
            for degree in (1, 4)
        }
        assert results[4].max_memory_bits < results[1].max_memory_bits


class TestMoveBudget:
    def test_paper_move_budget_14n(self, rng):
        # Unless corrected, an agent moves at most 14 n' <= 14 n; with
        # corrections the chain stays under 14 n too (Lemma 5).
        for _ in range(5):
            placement = random_placement(24, 4, rng)
            engine = build_engine(ALGO, placement)
            engine.run()
            for agent_id in engine.agent_ids:
                assert engine.metrics.moves_per_agent.get(agent_id, 0) <= 14 * 24


class TestPeriodicConvergenceProperty:
    """Hypothesis: random periodic rings converge to the fundamental N."""

    def test_random_periodic_rings(self):
        import random as _random

        from repro.ring.placement import periodic_placement, random_aperiodic_block

        rng = _random.Random(0xFEED)
        for _ in range(8):
            block = random_aperiodic_block(rng.randint(2, 4), 5, rng)
            degree = rng.randint(2, 4)
            placement = periodic_placement(block, degree)
            engine = build_engine(ALGO, placement)
            engine.run()
            fundamental = sum(block)
            estimates = {engine.agent(a).n_est for a in engine.agent_ids}
            assert estimates == {fundamental}, (
                f"block={block} degree={degree}: estimates {estimates} "
                f"!= fundamental {fundamental}"
            )
            from repro.analysis.verification import verify_uniform_deployment

            assert verify_uniform_deployment(engine, require_suspended=True).ok
