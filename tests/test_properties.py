"""Property-based end-to-end tests (hypothesis) over all three algorithms.

These are the library's strongest correctness evidence: random initial
configurations x random fair schedules must always reach uniform
deployment, and the execution traces must respect the model invariants
of DESIGN.md Section 5 (FIFO no-overtaking, token monotonicity,
stayers-only visibility).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.runner import build_engine, run_experiment
from repro.ring.placement import Placement
from repro.sim.scheduler import (
    BurstScheduler,
    ChaosScheduler,
    LaggardScheduler,
    RandomScheduler,
    SynchronousScheduler,
)
from repro.sim.trace import TraceEventKind, TraceRecorder

ALGORITHMS = ("known_k_full", "known_k_logspace", "unknown")


@st.composite
def placements(draw, max_n: int = 40):
    n = draw(st.integers(min_value=4, max_value=max_n))
    k = draw(st.integers(min_value=2, max_value=min(n, 8)))
    homes = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return Placement(ring_size=n, homes=tuple(homes))


def schedulers(seed: int):
    return [
        SynchronousScheduler(),
        RandomScheduler(seed),
        LaggardScheduler([0], patience=50, seed=seed),
        BurstScheduler(burst=20, seed=seed),
        ChaosScheduler(epoch=25, seed=seed),
    ]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@given(placement=placements(), seed=st.integers(0, 2**16))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_uniform_deployment_from_any_configuration(algorithm, placement, seed):
    scheduler = random.Random(seed).choice(schedulers(seed))
    result = run_experiment(algorithm, placement, scheduler=scheduler)
    assert result.ok, (
        f"{algorithm} failed on {placement.describe()} under "
        f"{scheduler.describe()}: {result.report.describe()}"
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@given(placement=placements(max_n=24))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_every_agent_releases_exactly_one_token(algorithm, placement):
    engine = build_engine(algorithm, placement)
    engine.run()
    assert engine.metrics.tokens_released == placement.agent_count
    # Tokens sit exactly on the home nodes, one each.
    tokens = engine.ring.token_counts
    assert sum(tokens) == placement.agent_count
    assert all(tokens[home] == 1 for home in placement.homes)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@given(placement=placements(max_n=24), seed=st.integers(0, 999))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_no_overtaking_in_traces(algorithm, placement, seed):
    """Arrival order at every node is consistent with FIFO no-overtaking.

    We check a necessary trace condition: between two consecutive
    arrivals of agent X at node v, every *moving* agent positioned
    between X's previous and current position arrives at v at most
    once more than X does — simplified here to: per node, arrival
    counts of any two agents differ by at most the number of laps + 1.
    """
    trace = TraceRecorder(keep=lambda e: e.kind is TraceEventKind.ARRIVE)
    engine = build_engine(algorithm, placement, scheduler=RandomScheduler(seed), trace=trace)
    engine.run()
    arrivals_by_node = {}
    for event in trace.events:
        arrivals_by_node.setdefault(event.node, []).append(event.agent_id)
    # Token monotonicity and single-settlement are checked implicitly by
    # the engine; here assert each node saw at least one arrival per
    # agent that ended there.
    positions = engine.final_positions()
    for agent_id, node in positions.items():
        assert agent_id in arrivals_by_node.get(node, []), (
            f"agent {agent_id} ended at node {node} without an arrival event"
        )


@given(placement=placements(max_n=30), seed=st.integers(0, 999))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_final_positions_schedule_independent(placement, seed):
    """Algorithm 1 is deterministic: the halted set ignores the schedule."""
    sync = run_experiment("known_k_full", placement)
    async_result = run_experiment(
        "known_k_full", placement, scheduler=RandomScheduler(seed)
    )
    assert sync.final_positions == async_result.final_positions


@given(placement=placements(max_n=30))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_all_algorithms_agree_on_gap_multiset(placement):
    """All three algorithms produce the same (uniform) gap multiset."""
    gaps = []
    for algorithm in ALGORITHMS:
        result = run_experiment(algorithm, placement)
        assert result.ok
        n = placement.ring_size
        ordered = sorted(result.final_positions)
        gaps.append(
            sorted(
                (ordered[(i + 1) % len(ordered)] - ordered[i]) % n or n
                for i in range(len(ordered))
            )
        )
    assert gaps[0] == gaps[1] == gaps[2]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@given(placement=placements(max_n=24))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_moves_respect_kn_budget(algorithm, placement):
    """Total moves stay within the paper's O(kn) envelope (x14 for Alg 6)."""
    result = run_experiment(algorithm, placement)
    n, k = placement.ring_size, placement.agent_count
    budget = 16 * k * n  # generous constant covering all three bounds
    assert result.total_moves <= budget
