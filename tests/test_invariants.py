"""Tests for the executable model invariants (DESIGN.md §5)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.invariants import (
    InvariantReport,
    check_action_pairing,
    check_all,
    check_fifo_order,
    check_halt_stability,
    check_token_events,
)
from repro.experiments.runner import build_engine
from repro.ring.placement import Placement, random_placement
from repro.sim.scheduler import RandomScheduler
from repro.sim.trace import TraceEvent, TraceEventKind, TraceRecorder

import random


def _trace(*events):
    recorder = TraceRecorder()
    for step, (kind, agent, node) in enumerate(events):
        recorder.record(
            TraceEvent(step=step, kind=kind, agent_id=agent, node=node)
        )
    return recorder


class TestIndividualChecks:
    def test_queue_reorder_detected(self):
        # Agents 0 then 1 enter the link into node 1 (MOVE at node 0),
        # but arrive in the opposite order: a queue reorder.
        trace = _trace(
            (TraceEventKind.MOVE, 0, 0),
            (TraceEventKind.MOVE, 1, 0),
            (TraceEventKind.ARRIVE, 1, 1),
            (TraceEventKind.ARRIVE, 0, 1),
        )
        report = InvariantReport()
        check_fifo_order(trace, report, ring_size=4, homes=(2, 3))
        assert not report.ok
        assert "reorder" in report.violations[0]

    def test_fifo_order_passes_with_initial_buffers(self):
        # Agent 0 starts at home node 1 (initial buffer) and must
        # arrive there before agent 1, which moved in from node 0.
        trace = _trace(
            (TraceEventKind.MOVE, 1, 0),
            (TraceEventKind.ARRIVE, 0, 1),
            (TraceEventKind.ARRIVE, 1, 1),
        )
        report = InvariantReport()
        check_fifo_order(trace, report, ring_size=4, homes=(1, 0))
        assert report.ok

    def test_fifo_prefix_allows_still_queued_agents(self):
        # Agent 1 entered the link but never arrived (trace cut short):
        # the arrival sequence is a proper prefix -> legal.
        trace = _trace(
            (TraceEventKind.MOVE, 0, 0),
            (TraceEventKind.MOVE, 1, 0),
            (TraceEventKind.ARRIVE, 0, 1),
        )
        report = InvariantReport()
        check_fifo_order(trace, report, ring_size=4, homes=(2, 3))
        assert report.ok

    def test_token_counts(self):
        trace = _trace(
            (TraceEventKind.TOKEN, 0, 0),
            (TraceEventKind.TOKEN, 0, 1),
            (TraceEventKind.TOKEN, 1, 2),
        )
        report = InvariantReport()
        check_token_events(trace, report, agent_count=2)
        assert not report.ok  # agent 0 released twice

    def test_missing_token_release(self):
        trace = _trace((TraceEventKind.TOKEN, 0, 0))
        report = InvariantReport()
        check_token_events(trace, report, agent_count=2)
        assert any("1/2" in violation for violation in report.violations)

    def test_action_pairing_detects_wrong_node(self):
        trace = _trace(
            (TraceEventKind.ARRIVE, 0, 3),
            (TraceEventKind.MOVE, 0, 4),  # resolved at a different node
        )
        report = InvariantReport()
        check_action_pairing(trace, report)
        assert not report.ok

    def test_action_pairing_detects_unresolved(self):
        trace = _trace((TraceEventKind.ARRIVE, 0, 3))
        report = InvariantReport()
        check_action_pairing(trace, report)
        assert "unresolved" in report.violations[0]

    def test_halt_stability_detects_zombie(self):
        trace = _trace(
            (TraceEventKind.ARRIVE, 0, 1),
            (TraceEventKind.SETTLE, 0, 1),
            (TraceEventKind.HALT, 0, 1),
            (TraceEventKind.MOVE, 0, 1),  # zombie action after halt
        )
        report = InvariantReport()
        check_halt_stability(trace, report)
        assert not report.ok

    def test_report_describe(self):
        report = InvariantReport()
        assert report.describe() == "all invariants hold"
        report.add("boom")
        assert "boom" in report.describe()


class TestRealExecutions:
    @pytest.mark.parametrize(
        "algorithm", ["known_k_full", "known_k_logspace", "unknown"]
    )
    def test_invariants_hold_on_real_runs(self, algorithm):
        placement = Placement(ring_size=20, homes=(0, 3, 9, 14))
        trace = TraceRecorder()
        engine = build_engine(algorithm, placement, trace=trace)
        engine.run()
        report = check_all(trace, placement.ring_size, placement.homes)
        assert report.ok, report.describe()

    @given(seed=st.integers(0, 10_000))
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_invariants_hold_under_random_schedules(self, seed):
        rng = random.Random(seed)
        placement = random_placement(rng.randint(6, 24), rng.randint(2, 5), rng)
        algorithm = rng.choice(["known_k_full", "known_k_logspace", "unknown"])
        trace = TraceRecorder()
        engine = build_engine(
            algorithm, placement, scheduler=RandomScheduler(seed), trace=trace
        )
        engine.run()
        report = check_all(trace, placement.ring_size, placement.homes)
        assert report.ok, f"{algorithm} on {placement.describe()}: {report.describe()}"
