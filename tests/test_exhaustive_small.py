"""Exhaustive correctness over ALL small initial configurations.

For small (n, k) we enumerate every initial configuration up to
rotation (fixing one home at node 0 loses no generality — the ring is
anonymous) and run all three algorithms on each.  This is a complete
verification of the solvability claim "from any initial configuration"
at these sizes, not a sample.
"""

from __future__ import annotations

import itertools
import math

import pytest

from repro.experiments.runner import run_experiment
from repro.ring.placement import Placement

ALGORITHMS = ("known_k_full", "known_k_logspace", "unknown")


def _all_placements(n: int, k: int):
    """Every placement with a home fixed at node 0 (rotation canonical)."""
    for others in itertools.combinations(range(1, n), k - 1):
        yield Placement(ring_size=n, homes=(0,) + others)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n,k", [(8, 2), (8, 3), (9, 3), (10, 4), (10, 5), (12, 4)])
def test_exhaustive_small_configurations(algorithm, n, k):
    failures = []
    count = 0
    for placement in _all_placements(n, k):
        count += 1
        result = run_experiment(algorithm, placement)
        if not result.ok:
            failures.append((placement.describe(), result.report.describe()))
    assert count == math.comb(n - 1, k - 1)
    assert not failures, f"{len(failures)}/{count} failed: {failures[:3]}"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_exhaustive_full_ring(algorithm):
    # k = n: every node occupied; already uniform, nobody may clash.
    placement = Placement(ring_size=6, homes=tuple(range(6)))
    result = run_experiment(algorithm, placement)
    assert result.ok
    assert sorted(result.final_positions) == list(range(6))
