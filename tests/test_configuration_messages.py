"""Tests for configuration snapshots (Lemma 1 units) and message types."""

from __future__ import annotations

from repro.core.messages import LeaderNotice, PatrolInfo
from repro.experiments.runner import build_engine
from repro.ring.configuration import LocalConfiguration
from repro.ring.placement import Placement, equidistant_placement


class TestLocalConfiguration:
    def _snapshot(self, placement):
        engine = build_engine("known_k_full", placement)
        return engine.snapshot()

    def test_corresponding_nodes_equal_in_symmetric_ring(self):
        # Before any action, two homes with identical surroundings have
        # equal local configurations (the heart of Lemma 1).
        snapshot = self._snapshot(equidistant_placement(12, 3))
        assert snapshot.local(0) == snapshot.local(4) == snapshot.local(8)
        assert snapshot.local(1) == snapshot.local(5)

    def test_local_config_distinguishes_tokens(self):
        engine = build_engine("known_k_full", equidistant_placement(12, 3))
        engine.run_rounds(1)  # everyone released a token and moved
        snapshot = engine.snapshot()
        assert snapshot.local(0).tokens == 1
        assert snapshot.local(1).tokens == 0
        assert snapshot.local(0) != snapshot.local(1)

    def test_queued_states_in_local_config(self):
        snapshot = self._snapshot(Placement(ring_size=6, homes=(2,)))
        local = snapshot.local(2)
        assert len(local.queued_states) == 1  # the initial buffer
        assert len(local.staying_states) == 0

    def test_occupied_and_pending_helpers(self):
        engine = build_engine("known_k_full", equidistant_placement(8, 2))
        engine.run()
        snapshot = engine.snapshot()
        assert snapshot.occupied_nodes() == (0, 4)
        assert snapshot.all_queues_empty()
        assert snapshot.total_messages_pending() == 0

    def test_local_configuration_value_semantics(self):
        first = LocalConfiguration(tokens=1, staying_states=("x",), queued_states=())
        second = LocalConfiguration(tokens=1, staying_states=("x",), queued_states=())
        third = LocalConfiguration(tokens=2, staying_states=("x",), queued_states=())
        assert first == second
        assert first != third


class TestMessages:
    def test_leader_notice_fields(self):
        notice = LeaderNotice(t_base=3, f_num=5)
        assert notice.t_base == 3
        assert notice.f_num == 5

    def test_patrol_info_block(self):
        info = PatrolInfo(
            n_estimate=6, k_estimate=2, nodes_moved=24, distances=(2, 4) * 4
        )
        assert info.block == (2, 4)

    def test_messages_are_hashable_values(self):
        # Frozen dataclasses: usable as set members, compared by value.
        first = LeaderNotice(t_base=1, f_num=2)
        second = LeaderNotice(t_base=1, f_num=2)
        assert first == second
        assert len({first, second}) == 1
