"""Edge semantics of the engine's drivers and observation fast paths.

Two contracts pinned here:

* **Driver boundaries** (``run_rounds`` / ``run_until``): what happens
  with zero rounds, with a predicate already true at entry, and on an
  engine that is already quiescent.  In particular the regression that
  motivated the contract: ``run_until`` on a quiescent engine used to
  re-evaluate the predicate a *second* time at the same boundary, so a
  side-effectful predicate could make a quiesced run report ``True``.
* **Observation fast paths** (``collect_metrics=False``, no trace):
  turning recording off must never change what the simulation *does* —
  same activation log, same step count, same final positions — across
  every algorithm and scheduler family.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.runner import ALGORITHMS, build_agents
from repro.ring.placement import random_placement
from repro.sim.engine import Engine
from repro.sim.scheduler import (
    BurstScheduler,
    ChaosScheduler,
    LaggardScheduler,
    RandomScheduler,
    RecordingScheduler,
    SynchronousScheduler,
)
from repro.sim.trace import TraceRecorder

ALL_ALGORITHMS = sorted(ALGORITHMS)

SCHEDULER_FACTORIES = {
    "SynchronousScheduler": lambda: SynchronousScheduler(),
    "RandomScheduler": lambda: RandomScheduler(seed=13),
    "LaggardScheduler": lambda: LaggardScheduler([0], patience=5, seed=13),
    "BurstScheduler": lambda: BurstScheduler(burst=7, seed=13),
    "ChaosScheduler": lambda: ChaosScheduler(epoch=9, seed=13),
}


def _engine(algorithm, n, k, placement_seed, scheduler, **kwargs) -> Engine:
    placement = random_placement(n, k, random.Random(placement_seed))
    agents = build_agents(algorithm, k, n)
    return Engine(placement, agents, scheduler=scheduler, **kwargs)


# -- run_rounds boundaries ---------------------------------------------------


def test_run_rounds_zero_runs_nothing():
    recorder = RecordingScheduler(SynchronousScheduler())
    engine = _engine("known_k_full", 20, 4, 1, recorder)
    metrics = engine.run_rounds(0)
    assert engine.steps == 0
    assert recorder.batches == []  # scheduler never consulted
    assert metrics.total_activations == 0


def test_run_rounds_negative_runs_nothing():
    engine = _engine("known_k_full", 20, 4, 1, SynchronousScheduler())
    engine.run_rounds(-3)
    assert engine.steps == 0


def test_run_rounds_on_quiescent_engine_is_a_noop():
    recorder = RecordingScheduler(SynchronousScheduler())
    engine = _engine("known_k_full", 20, 4, 1, recorder)
    engine.run()
    assert engine.quiescent
    steps = engine.steps
    batches = len(recorder.batches)
    engine.run_rounds(10)
    assert engine.steps == steps
    assert len(recorder.batches) == batches  # no draw on an empty enabled set


def test_run_rounds_stops_early_at_quiescence():
    engine = _engine("known_k_full", 16, 4, 2, SynchronousScheduler())
    engine.run_rounds(10_000_000)
    assert engine.quiescent


# -- run_until boundaries ----------------------------------------------------


def test_run_until_predicate_true_at_entry_runs_nothing():
    recorder = RecordingScheduler(SynchronousScheduler())
    engine = _engine("known_k_full", 20, 4, 1, recorder)
    assert engine.run_until(lambda eng: True) is True
    assert engine.steps == 0
    assert recorder.batches == []


def test_run_until_max_rounds_zero_is_a_pure_probe():
    calls = []
    engine = _engine("known_k_full", 20, 4, 1, SynchronousScheduler())
    assert (
        engine.run_until(lambda eng: calls.append(1) or False, max_rounds=0)
        is False
    )
    assert engine.steps == 0
    assert len(calls) == 1  # exactly one boundary evaluation
    assert engine.run_until(lambda eng: True, max_rounds=0) is True


def test_run_until_evaluates_predicate_once_per_boundary():
    recorder = RecordingScheduler(SynchronousScheduler())
    engine = _engine("known_k_full", 20, 4, 3, recorder)
    calls = []
    assert engine.run_until(lambda eng: calls.append(1) or False) is False
    assert engine.quiescent
    # One evaluation before each batch plus the final quiescent boundary.
    assert len(calls) == len(recorder.batches) + 1


def test_run_until_quiescent_never_double_evaluates_the_predicate():
    # Regression: the quiescent branch used to call the predicate a
    # second time at the same boundary, so a predicate with side
    # effects (here: true from its 2nd call on) made a quiesced run
    # return True.  The contract is one evaluation per boundary and
    # False on quiescence.
    engine = _engine("known_k_full", 20, 4, 1, SynchronousScheduler())
    engine.run()
    assert engine.quiescent
    calls = []

    def flips_true_on_second_call(eng) -> bool:
        calls.append(1)
        return len(calls) >= 2

    assert engine.run_until(flips_true_on_second_call) is False
    assert len(calls) == 1


def test_run_until_fires_mid_run():
    engine = _engine("known_k_full", 24, 4, 5, SynchronousScheduler())
    assert engine.run_until(lambda eng: eng.steps >= 10) is True
    assert 10 <= engine.steps < 10 + 4  # fired at the first boundary past 10


# -- observation fast paths (collect_metrics / trace) ------------------------


@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULER_FACTORIES))
@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_metrics_off_fast_path_preserves_execution(algorithm, scheduler_name):
    full = _engine(
        algorithm, 24, 6, 7, SCHEDULER_FACTORIES[scheduler_name]()
    )
    fast = _engine(
        algorithm,
        24,
        6,
        7,
        SCHEDULER_FACTORIES[scheduler_name](),
        collect_metrics=False,
    )
    full.run()
    fast.run()
    assert list(fast.activation_log) == list(full.activation_log)
    assert fast.steps == full.steps
    assert fast.final_positions() == full.final_positions()
    # The fast path really is fast: nothing was recorded.
    assert fast.metrics.total_activations == 0
    assert fast.metrics.total_moves == 0
    assert fast.metrics.rounds is None
    assert fast.metrics.memory_bits_per_agent == {}


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_metrics_and_trace_off_together_preserve_execution(algorithm):
    full = _engine(
        algorithm, 24, 6, 11, ChaosScheduler(epoch=6, seed=3),
        trace=TraceRecorder(),
    )
    bare = _engine(
        algorithm, 24, 6, 11, ChaosScheduler(epoch=6, seed=3),
        collect_metrics=False,
    )
    full.run()
    bare.run()
    assert list(bare.activation_log) == list(full.activation_log)
    assert bare.final_positions() == full.final_positions()
