"""Unit and property tests for the distance-sequence toolkit (E7, E12)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sequences import (
    configuration_distance_sequence,
    distances_from_positions,
    fourfold_prefix_period,
    is_fourfold_repetition,
    is_periodic,
    minimal_period,
    minimal_rotation,
    minimal_rotation_index,
    positions_from_distances,
    prefix_alignment_shift,
    rotation_rank,
    shift,
    symmetry_degree,
)
from repro.errors import ConfigurationError

from reference_impls import brute_force_min_period, brute_force_min_rotation_index

sequences = st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=24)
positive_sequences = st.lists(
    st.integers(min_value=1, max_value=9), min_size=1, max_size=16
)


class TestShift:
    def test_identity(self):
        assert shift((1, 2, 3), 0) == (1, 2, 3)

    def test_basic(self):
        assert shift((1, 2, 3, 4), 1) == (2, 3, 4, 1)
        assert shift((1, 2, 3, 4), 3) == (4, 1, 2, 3)

    def test_wraps_modulo_length(self):
        assert shift((1, 2, 3), 4) == shift((1, 2, 3), 1)
        assert shift((1, 2, 3), -1) == (3, 1, 2)

    def test_empty(self):
        assert shift((), 5) == ()

    @given(sequences, st.integers(min_value=0, max_value=50))
    def test_shift_composition(self, seq, amount):
        once = shift(seq, amount)
        assert shift(once, len(seq) - amount % len(seq)) == tuple(seq)


class TestMinimalRotation:
    def test_paper_figure_1a(self):
        # Figure 1(a): distance sequence (1,4,2,1,2,2) is aperiodic.
        seq = (1, 4, 2, 1, 2, 2)
        assert minimal_rotation(seq) == (1, 2, 2, 1, 4, 2)

    def test_all_equal(self):
        assert minimal_rotation_index((5, 5, 5)) == 0

    def test_tie_breaks_to_smallest_index(self):
        # (1,2,1,2): rotations 0 and 2 tie; the smallest index wins.
        assert minimal_rotation_index((1, 2, 1, 2)) == 0
        assert minimal_rotation_index((2, 1, 2, 1)) == 1

    def test_rank_alias(self):
        assert rotation_rank((3, 1, 2)) == minimal_rotation_index((3, 1, 2))

    @given(sequences)
    @settings(max_examples=200)
    def test_matches_brute_force(self, seq):
        assert minimal_rotation_index(seq) == brute_force_min_rotation_index(seq)

    @given(sequences)
    def test_result_is_minimal(self, seq):
        best = minimal_rotation(seq)
        for amount in range(len(seq)):
            assert best <= shift(seq, amount)


class TestMinimalPeriod:
    def test_aperiodic(self):
        assert minimal_period((1, 4, 2, 1, 2, 2)) == 6

    def test_paper_figure_1b(self):
        # Figure 1(b): (1,2,3,1,2,3) = (1,2,3)^2 has period 3, degree 2.
        assert minimal_period((1, 2, 3, 1, 2, 3)) == 3
        assert symmetry_degree((1, 2, 3, 1, 2, 3)) == 2

    def test_constant_sequence(self):
        assert minimal_period((7, 7, 7, 7)) == 1
        assert symmetry_degree((7, 7, 7, 7)) == 4

    def test_border_not_period(self):
        # (1,2,1) has border (1) but 2 does not divide 3: aperiodic.
        assert minimal_period((1, 2, 1)) == 3

    def test_is_periodic(self):
        assert is_periodic((1, 2, 1, 2))
        assert not is_periodic((1, 2, 3))
        assert not is_periodic(())

    def test_symmetry_degree_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            symmetry_degree(())

    @given(sequences)
    @settings(max_examples=200)
    def test_matches_brute_force(self, seq):
        assert minimal_period(seq) == brute_force_min_period(seq)

    @given(sequences)
    def test_period_divides_length(self, seq):
        assert len(seq) % minimal_period(seq) == 0


class TestFourfold:
    def test_paper_figure_8(self):
        # Figure 8: the agent sees (1,3,1,3,1,3,1,3) = (1,3)^4 and
        # estimates 4 nodes.
        seq = (1, 3) * 4
        assert is_fourfold_repetition(seq)
        assert fourfold_prefix_period(seq) == 2

    def test_not_multiple_of_four(self):
        assert not is_fourfold_repetition((1, 1, 1))

    def test_multiple_of_four_but_not_repetition(self):
        assert not is_fourfold_repetition((1, 2, 3, 4))
        assert fourfold_prefix_period((1, 2, 3, 4)) is None

    def test_longer_block(self):
        assert is_fourfold_repetition((2, 5, 1) * 4)

    @given(st.lists(st.integers(1, 5), min_size=1, max_size=6))
    def test_constructed_repetition_detected(self, block):
        assert is_fourfold_repetition(tuple(block) * 4)


class TestPositionsDistances:
    def test_round_trip(self):
        positions = [0, 3, 7, 12]
        gaps = distances_from_positions(positions, 16)
        assert gaps == (3, 4, 5, 4)
        assert positions_from_distances(gaps, start=0) == positions

    def test_single_agent_full_circle(self):
        assert distances_from_positions([5], 9) == (9,)

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ConfigurationError):
            distances_from_positions([1, 1], 8)

    def test_zero_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            distances_from_positions([0], 0)

    def test_distances_must_sum_to_ring(self):
        with pytest.raises(ConfigurationError):
            positions_from_distances((1, 2), ring_size=10)

    def test_nonpositive_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            positions_from_distances((0, 4), ring_size=4)

    def test_configuration_distance_sequence_is_minimal(self):
        seq = configuration_distance_sequence([0, 1, 5], 12)
        assert seq == minimal_rotation(seq)

    @given(positive_sequences)
    def test_round_trip_property(self, gaps):
        positions = positions_from_distances(gaps)
        ring = sum(gaps)
        recovered = distances_from_positions(positions, ring)
        # Recovered gaps are a rotation of the input (sorted start).
        assert sorted(recovered) == sorted(gaps)
        assert sum(recovered) == ring


class TestPrefixAlignment:
    def test_exact_alignment(self):
        # Sender block (2,3,4); receiver observed (3,4,2)*4 and sits
        # 2 hops ahead of the sender's home: shift t=1.
        own = (3, 4, 2) * 4
        assert prefix_alignment_shift(own, (2, 3, 4), 2) == 1

    def test_zero_shift(self):
        own = (2, 3, 4) * 4
        assert prefix_alignment_shift(own, (2, 3, 4), 0) == 0

    def test_modular_gap(self):
        # Gaps beyond one circuit reduce modulo the block sum (9).
        own = (3, 4, 2) * 4
        assert prefix_alignment_shift(own, (2, 3, 4), 2 + 9 * 5) == 1

    def test_negative_gap(self):
        own = (3, 4, 2) * 4
        assert prefix_alignment_shift(own, (2, 3, 4), 2 - 9) == 1

    def test_mismatched_sequence(self):
        assert prefix_alignment_shift((9, 9, 9), (2, 3, 4), 2) is None

    def test_gap_with_no_prefix_sum(self):
        # No prefix of (2,3,4) sums to 1.
        assert prefix_alignment_shift((3, 4, 2), (2, 3, 4), 1) is None

    def test_empty_block(self):
        assert prefix_alignment_shift((1,), (), 0) is None

    @given(
        st.lists(st.integers(1, 4), min_size=1, max_size=5),
        st.integers(0, 4),
        st.integers(0, 3),
    )
    def test_constructed_alignment_found(self, block, t_index, laps):
        block = tuple(block)
        t = t_index % len(block)
        own = (block[t:] + block[:t]) * 4
        gap = sum(block[:t]) + laps * sum(block)
        found = prefix_alignment_shift(own, block, gap)
        assert found is not None
        # The found shift must produce the same rotation we built.
        assert block[found:] + block[:found] == block[t:] + block[:t]
