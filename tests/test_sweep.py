"""Tests for the parallel sweep runner (determinism + pool identity)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweep import (
    SweepCell,
    SweepSpec,
    cell_seed,
    expand_cells,
    rows_to_json,
    run_cell,
    run_sweep,
    summarize_rows,
)

SMALL_SPEC = SweepSpec(
    algorithms=("known_k_full", "unknown"),
    grid=((24, 4), (36, 6)),
    schedulers=("sync", "random"),
    trials=2,
    base_seed=11,
)


class TestCellSeeding:
    def test_seed_is_stable_across_calls(self):
        a = cell_seed(0, "known_k_full", 64, 8, "random", 3)
        b = cell_seed(0, "known_k_full", 64, 8, "random", 3)
        assert a == b

    def test_seed_depends_on_every_coordinate(self):
        base = cell_seed(0, "known_k_full", 64, 8, "random", 3)
        assert base != cell_seed(1, "known_k_full", 64, 8, "random", 3)
        assert base != cell_seed(0, "unknown", 64, 8, "random", 3)
        assert base != cell_seed(0, "known_k_full", 128, 8, "random", 3)
        assert base != cell_seed(0, "known_k_full", 64, 16, "random", 3)
        assert base != cell_seed(0, "known_k_full", 64, 8, "sync", 3)
        assert base != cell_seed(0, "known_k_full", 64, 8, "random", 4)

    def test_seed_is_pinned(self):
        # The exact value is part of the trajectory-tracking contract:
        # changing the derivation silently invalidates archived sweeps.
        assert cell_seed(0, "known_k_full", 64, 8, "sync", 0) == (
            int.from_bytes(
                __import__("hashlib")
                .sha256(b"0|known_k_full|64x8|sync|0")
                .digest()[:8],
                "big",
            )
            & 0x7FFF_FFFF_FFFF_FFFF
        )


class TestSpec:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(algorithms=("nope",), grid=((24, 4),))

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(
                algorithms=("known_k_full",), grid=((24, 4),), schedulers=("nope",)
            )

    def test_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(algorithms=("known_k_full",), grid=((24, 4),), trials=0)

    def test_expand_order_is_canonical(self):
        cells = expand_cells(SMALL_SPEC)
        assert len(cells) == 2 * 2 * 2 * 2
        coords = [
            (c.algorithm, c.ring_size, c.agent_count, c.scheduler, c.trial)
            for c in cells
        ]
        assert coords == sorted(
            coords,
            key=lambda c: (
                SMALL_SPEC.algorithms.index(c[0]),
                SMALL_SPEC.grid.index((c[1], c[2])),
                SMALL_SPEC.schedulers.index(c[3]),
                c[4],
            ),
        )


class TestRunCell:
    def test_cell_is_self_contained_and_deterministic(self):
        cell = SweepCell(
            algorithm="known_k_full",
            ring_size=24,
            agent_count=4,
            scheduler="random",
            trial=0,
            seed=cell_seed(5, "known_k_full", 24, 4, "random", 0),
        )
        first = run_cell(cell)
        second = run_cell(cell)
        assert first == second
        assert first["uniform"] is True
        assert first["scheduler"] == "random"
        assert first["seed"] == cell.seed

    def test_async_cells_report_no_ideal_time(self):
        cell = SweepCell(
            algorithm="known_k_full",
            ring_size=24,
            agent_count=4,
            scheduler="burst",
            trial=0,
            seed=1234,
        )
        assert run_cell(cell)["ideal_time"] is None


class TestRunSweep:
    def test_serial_and_parallel_rows_are_identical(self):
        serial = run_sweep(SMALL_SPEC, processes=1)
        parallel = run_sweep(SMALL_SPEC, processes=2)
        assert serial == parallel
        assert len(serial) == len(expand_cells(SMALL_SPEC))
        assert all(row["uniform"] for row in serial)

    def test_rows_follow_cell_order(self):
        rows = run_sweep(SMALL_SPEC, processes=1)
        cells = expand_cells(SMALL_SPEC)
        for row, cell in zip(rows, cells):
            assert row["algorithm"] == cell.algorithm
            assert row["n"] == cell.ring_size
            assert row["k"] == cell.agent_count
            assert row["scheduler"] == cell.scheduler
            assert row["trial"] == cell.trial
            assert row["seed"] == cell.seed

    def test_summary_aggregates_trials(self):
        rows = run_sweep(SMALL_SPEC, processes=1)
        summary = summarize_rows(rows)
        assert len(summary) == 2 * 2 * 2  # trials collapsed
        for entry in summary:
            assert entry["trials"] == SMALL_SPEC.trials
            assert entry["uniform"] is True

    def test_json_round_trip(self):
        rows = run_sweep(SMALL_SPEC, processes=1)
        payload = json.loads(rows_to_json(SMALL_SPEC, rows))
        assert payload["spec"]["trials"] == SMALL_SPEC.trials
        assert payload["spec"]["algorithms"] == list(SMALL_SPEC.algorithms)
        assert len(payload["rows"]) == len(rows)
        assert payload["rows"][0]["algorithm"] == rows[0]["algorithm"]
