"""Phase-level unit tests: drive agent generators with crafted views.

These tests exercise the paper's pseudocode line by line, without the
engine: we feed hand-built :class:`NodeView` sequences and assert the
actions and internal state transitions (selection-circuit bookkeeping,
ID measurement, estimate adoption).
"""

from __future__ import annotations


from repro.core.known_k_full import KnownKFullAgent
from repro.core.messages import PatrolInfo
from repro.core.unknown import UnknownKAgent
from repro.sim.actions import Move, NodeView


def _view(tokens=0, agents=0, messages=(), arrived=True):
    return NodeView(
        tokens=tokens, agents_present=agents, messages=messages, arrived=arrived
    )


def _drive_ring(agent, gaps, start_action):
    """Feed views simulating a walk over token nodes at the given gaps.

    ``gaps`` are distances between consecutive token nodes; the walk
    starts right after the agent left its home.  Returns the list of
    actions taken.
    """
    actions = [start_action]
    action = start_action
    for gap in gaps:
        for step in range(gap):
            tokens = 1 if step == gap - 1 else 0
            action = agent.act(_view(tokens=tokens))
            actions.append(action)
            if action.move is not Move.FORWARD:
                return actions
    return actions


class TestAlgorithm1Phases:
    def test_selection_records_distances_and_n(self):
        # Ring n = 10, k = 3, distances from this agent: (2, 3, 5).
        agent = KnownKFullAgent(3)
        first = agent.start(_view(tokens=0))
        assert first.release_token and first.move is Move.FORWARD
        _drive_ring(agent, (2, 3, 5), first)
        assert agent.D == [2, 3, 5]
        assert agent.n == 10

    def test_rank_zero_halts_at_home(self):
        # Distances (2, 3, 5) are already the minimal rotation: the
        # agent is the base and its target is its home (rank 0).
        agent = KnownKFullAgent(3)
        first = agent.start(_view(tokens=0))
        actions = _drive_ring(agent, (2, 3, 5), first)
        assert actions[-1].halt
        assert agent.rank == 0
        assert agent.remaining == 0

    def test_nonzero_rank_walks_to_target(self):
        # Distances (5, 2, 3): minimal rotation starts at index 1, so
        # rank = 1, disBase = 5, target offset = floor(10/3) = 3 with
        # remainder handling min(1, 1) = +1 -> 5 + 3 + 1 = 9 more hops.
        agent = KnownKFullAgent(3)
        first = agent.start(_view(tokens=0))
        actions = _drive_ring(agent, (5, 2, 3), first)
        assert not actions[-1].halt  # still walking to the target
        assert agent.rank == 1
        assert agent.dis_base == 5
        walked = 0
        action = actions[-1]
        while not action.halt:
            action = agent.act(_view(tokens=0))
            walked += 1
        # remaining = disBase + offset = 9: the circuit-closing action
        # already yielded the 1st move, so 8 more moves + 1 halt follow.
        assert walked == 9

    def test_no_broadcasts_ever(self):
        agent = KnownKFullAgent(2)
        first = agent.start(_view(tokens=0))
        actions = _drive_ring(agent, (4, 4), first)
        assert all(action.broadcast is None for action in actions)


class TestUnknownPhases:
    def test_estimate_on_fourfold_window(self):
        # Gaps (1, 3) repeated: the agent stops after 8 token nodes
        # with n' = 4, k' = 2, nodes = 16 (Figure 8).
        agent = UnknownKAgent()
        first = agent.start(_view(tokens=0))
        assert first.release_token
        _drive_ring(agent, (1, 3) * 4, first)
        assert agent.k_est == 2
        assert agent.n_est == 4
        assert agent.nodes == 16

    def test_estimate_waits_for_full_repetition(self):
        agent = UnknownKAgent()
        first = agent.start(_view(tokens=0))
        _drive_ring(agent, (1, 3) * 3, first)  # only 3 repetitions seen
        assert agent.n_est is None  # still estimating

    def test_patrol_sends_to_staying_agents(self):
        agent = UnknownKAgent()
        first = agent.start(_view(tokens=0))
        _drive_ring(agent, (1, 1, 1, 1), first)  # n' = 1? no: gaps (1,1,1,1)
        # gaps of 1 four times -> block (1), n' = 1, k' = 1, nodes = 4.
        assert agent.n_est == 1
        # Next 8 moves are patrol (to nodes = 12 n' = 12).  Meeting a
        # staying agent: the action for that very node carries the
        # PatrolInfo (arrive, observe, send, leave — one atomic action).
        action = agent.act(_view(tokens=0, agents=1))
        assert isinstance(action.broadcast, PatrolInfo)
        assert action.broadcast.n_estimate == 1
        action = agent.act(_view(tokens=0, agents=0))
        assert action.broadcast is None

    def test_suspended_agent_ignores_small_estimates(self):
        agent = UnknownKAgent()
        first = agent.start(_view(tokens=0))
        _drive_ring(agent, (1, 1, 1, 1), first)
        # Finish patrol (8 single moves) and deployment (rank 0).
        action = None
        for _ in range(8):
            action = agent.act(_view(tokens=0))
        assert action.suspend
        # A message with the same estimate must not wake a resume.
        same = PatrolInfo(n_estimate=1, k_estimate=1, nodes_moved=12, distances=(1,) * 4)
        action = agent.act(_view(tokens=0, messages=(same,), arrived=False))
        assert action.suspend

    def test_suspended_agent_adopts_doubled_estimate(self):
        agent = UnknownKAgent()
        first = agent.start(_view(tokens=0))
        _drive_ring(agent, (1, 1, 1, 1), first)
        for _ in range(8):
            action = agent.act(_view(tokens=0))
        assert action.suspend and agent.nodes == 12
        # Sender: block (1, 1) (n'=2, k'=2), moved 14 nodes, co-located.
        info = PatrolInfo(
            n_estimate=2, k_estimate=2, nodes_moved=14, distances=(1, 1) * 4
        )
        action = agent.act(_view(tokens=0, messages=(info,), arrived=False))
        assert agent.n_est == 2
        assert agent.k_est == 2
        assert action.move is Move.FORWARD  # catching up to 12 n' = 24

    def test_adoption_rebases_distance_sequence(self):
        agent = UnknownKAgent()
        agent.D = [1, 3] * 4
        agent.n_est = 4
        agent.k_est = 2
        agent.nodes = 16
        info = PatrolInfo(
            n_estimate=12,
            k_estimate=4,
            # sender moved 48 and sits 1 hop ahead of .. gap = 48-16=32,
            # 32 mod 12 = 8: prefix (3,1,3) sums to 7, (3,1,3,5)... use
            # block whose prefix sums hit 8: (1,3,1,3,... no: craft
            # block (1,3,3,5): prefix sums 0,1,4,7; need 8 -> no match.
            nodes_moved=48,
            distances=(1, 3, 1, 7) * 4,
        )
        # gap = 32 mod 12 = 8; prefix sums of (1,3,1,7): 0,1,4,5 -> no
        # alignment: the message must NOT trigger.
        assert agent._best_trigger((info,)) is None
        # With gap 36: 36 mod 12 = 0 -> t = 0 requires D to be a prefix
        # of the block's periodic extension: (1,3,1,3...) vs (1,3,1,7..)
        # mismatch at j=3 -> still no trigger.
        info2 = PatrolInfo(
            n_estimate=12, k_estimate=4, nodes_moved=52, distances=(1, 3, 1, 7) * 4
        )
        assert agent._best_trigger((info2,)) is None
        # A consistent sender: block (1,3,1,7) shifted so the receiver's
        # (1,3)^4 appears -> impossible since 7 never matches; use block
        # (1,3,1,3) - wait, that is periodic; senders always hold
        # aperiodic blocks, so a (1,3)^4 receiver inside a larger ring
        # aligns only with blocks containing (1,3) repeats, e.g.
        # (1,3,1,3,1,3,1,11): gap must put us at a (1,3) run start.
        block = (1, 3, 1, 3, 1, 3, 1, 11)  # sender ring size 24
        # t = 0 alignment needs gap % 24 == 0 and D[j] = block[j mod 8]:
        # (1,3,1,3,1,3,1,3) vs block -> j=7: 3 != 11 -> fails.  t = 2:
        # gap = 1+3 = 4; D matches block[2..9 mod 8] = (1,3,1,3,1,11..)
        # -> fails at j=5.  No alignment in this ring for a full (1,3)^4
        # window of 8 entries -- the window wraps the 11.  Use a
        # receiver with k'=1: D = (1)*4 aligns anywhere a 1-run of
        # length 4 exists: impossible too.  So assert no false trigger:
        info3 = PatrolInfo(
            n_estimate=24, k_estimate=8, nodes_moved=96, distances=block * 4
        )
        assert agent._best_trigger((info3,)) is None
