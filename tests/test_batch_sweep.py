"""The backend knob end-to-end: sweeps, cache, campaign spec, CLI.

The wiring contract: ``backend="batch"`` changes *how* cells are
computed, never *what* comes out — rows, archived records, content
hashes and :meth:`RunStore.digest` are all byte-identical to the
object path.  The hypothesis property at the bottom is the strongest
form: for arbitrary small sweep specs, the two backends produce stores
with equal digests (record-for-record identical archives).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError
from repro.experiments.sweep import SweepSpec, execute_sweep
from repro.store import RunStore
from repro.store.cache import cached_run


def _sweep(**overrides) -> SweepSpec:
    defaults = dict(
        algorithms=("known_k_full", "unknown"),
        grid=((16, 4), (12, 3)),
        schedulers=("sync", "random", "burst:burst=3"),
        trials=2,
        base_seed=5,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError):
        execute_sweep(_sweep(), processes=1, backend="vectorized")


def test_storeless_rows_identical_across_backends():
    spec = _sweep()
    object_rows = execute_sweep(spec, processes=1).rows
    batch_rows = execute_sweep(spec, processes=1, backend="batch").rows
    assert object_rows == batch_rows


def test_store_digests_identical_across_backends(tmp_path):
    spec = _sweep()
    object_store = RunStore(str(tmp_path / "object"))
    batch_store = RunStore(str(tmp_path / "batch"))
    object_outcome = execute_sweep(spec, processes=1, store=object_store)
    batch_outcome = execute_sweep(
        spec, processes=1, store=batch_store, backend="batch",
        validate_backend=True,
    )
    assert object_outcome.rows == batch_outcome.rows
    assert object_store.digest() == batch_store.digest()


def test_batch_backend_resumes_from_object_store_and_back(tmp_path):
    # Cross-backend resume: records archived by one backend are cache
    # hits for the other, in both directions.
    spec = _sweep(trials=1)
    store = RunStore(str(tmp_path / "shared"))
    first = execute_sweep(spec, processes=1, store=store)
    assert first.executed == first.total
    warm = execute_sweep(spec, processes=1, store=store, backend="batch")
    assert warm.executed == 0 and warm.cached == warm.total
    assert warm.rows == first.rows

    wider = _sweep(trials=2)  # trial 0 cached, trial 1 fresh per cell
    partial = execute_sweep(
        wider, processes=1, store=store, backend="batch"
    )
    assert partial.cached == first.total
    assert partial.executed == partial.total - first.total
    rewarm = execute_sweep(wider, processes=1, store=store)
    assert rewarm.executed == 0
    assert rewarm.rows == partial.rows


def test_batch_backend_progress_counts_every_cell():
    seen = []
    spec = _sweep(trials=1)
    execute_sweep(
        spec,
        processes=1,
        backend="batch",
        progress=lambda done, total: seen.append((done, total)),
    )
    total = len(spec.algorithms) * len(spec.grid) * len(spec.schedulers)
    assert seen == [(i, total) for i in range(1, total + 1)]


def test_cached_run_backend_batch_same_hash(tmp_path):
    from repro.experiments.sweep import expand_cells

    spec = expand_cells(_sweep(trials=1))[0].to_experiment_spec()
    object_store = RunStore(str(tmp_path / "object"))
    batch_store = RunStore(str(tmp_path / "batch"))
    object_result, object_hit = cached_run(spec, object_store)
    batch_result, batch_hit = cached_run(spec, batch_store, backend="batch")
    assert (object_hit, batch_hit) == (False, False)
    assert object_store.digest() == batch_store.digest()
    # Second call is a hit regardless of backend.
    _, hit = cached_run(spec, batch_store, backend="object")
    assert hit
    with pytest.raises(ConfigurationError):
        cached_run(spec, backend="columnar")


def test_campaign_spec_backend_field_round_trip_and_hash_stability():
    sweep = _sweep(trials=1)
    default = CampaignSpec(kind="sweep", sweep=sweep)
    explicit = CampaignSpec(kind="sweep", sweep=sweep, backend="object")
    batch = CampaignSpec(kind="sweep", sweep=sweep, backend="batch")
    # The default backend must not perturb pre-existing content hashes.
    assert default.content_hash() == explicit.content_hash()
    assert "backend" not in default.to_dict()["fleet"]
    # The backend is a fleet knob: work identity ignores it entirely.
    assert default.work_hash() == batch.work_hash()
    assert batch.to_dict()["fleet"]["backend"] == "batch"
    assert CampaignSpec.from_dict(batch.to_dict()).backend == "batch"
    with pytest.raises(ConfigurationError):
        CampaignSpec(kind="sweep", sweep=sweep, backend="columnar")


@settings(max_examples=10, deadline=None)
@given(
    algorithm=st.sampled_from(
        ["known_k_full", "known_n_full", "known_k_logspace", "unknown"]
    ),
    n=st.integers(min_value=4, max_value=24),
    k=st.integers(min_value=1, max_value=6),
    scheduler=st.sampled_from(
        ["sync", "random", "chaos:epoch=5", "laggard:victims=0,patience=4"]
    ),
    trials=st.integers(min_value=1, max_value=3),
    base_seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_backend_digest_identity(
    tmp_path_factory, algorithm, n, k, scheduler, trials, base_seed
):
    k = min(k, n)
    spec = SweepSpec(
        algorithms=(algorithm,),
        grid=((n, k),),
        schedulers=(scheduler,),
        trials=trials,
        base_seed=base_seed,
    )
    root = tmp_path_factory.mktemp("digest")
    object_store = RunStore(str(root / "object"))
    batch_store = RunStore(str(root / "batch"))
    execute_sweep(spec, processes=1, store=object_store)
    execute_sweep(spec, processes=1, store=batch_store, backend="batch")
    assert object_store.digest() == batch_store.digest()
