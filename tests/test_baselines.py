"""Tests for the optimal-move planner and the rendezvous contrast (E5, E18)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.analysis.verification import verify_positions
from repro.baselines.optimal import optimal_uniform_plan, quarter_bound
from repro.baselines.rendezvous import RendezvousAgent
from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiment
from repro.ring.placement import (
    Placement,
    equidistant_placement,
    periodic_placement,
    placement_from_distances,
    quarter_packed_placement,
    random_placement,
)
from repro.sim.engine import Engine


def _brute_force_optimum(placement: Placement) -> int:
    """Exhaustive minimum over all uniform target sets and assignments."""
    n = placement.ring_size
    k = placement.agent_count
    base = [i * n // k for i in range(k)]
    best = None
    for rotation in range(n):
        targets = [(t + rotation) % n for t in base]
        for perm in itertools.permutations(targets):
            cost = sum(
                (t - h) % n for h, t in zip(placement.homes, perm)
            )
            if best is None or cost < best:
                best = cost
    return best


class TestOptimalPlan:
    def test_already_uniform_costs_zero(self):
        plan = optimal_uniform_plan(equidistant_placement(12, 4))
        assert plan.total_moves == 0

    def test_matches_brute_force_small(self):
        rng = random.Random(11)
        for _ in range(4):
            placement = random_placement(8, 3, rng)
            plan = optimal_uniform_plan(placement)
            assert plan.total_moves == _brute_force_optimum(placement)

    def test_targets_are_uniform(self):
        plan = optimal_uniform_plan(quarter_packed_placement(24, 6))
        assert verify_positions(sorted(plan.targets), 24).ok

    def test_quarter_packed_meets_theorem1_floor(self):
        placement = quarter_packed_placement(40, 8)
        plan = optimal_uniform_plan(placement)
        assert plan.total_moves >= quarter_bound(40, 8)

    def test_algorithms_within_constant_of_optimal(self):
        placement = quarter_packed_placement(40, 8)
        plan = optimal_uniform_plan(placement)
        for algorithm in ("known_k_full", "known_k_logspace"):
            result = run_experiment(algorithm, placement)
            assert result.total_moves <= 12 * max(plan.total_moves, 1)

    def test_per_agent_moves_sum(self):
        placement = random_placement(15, 4, random.Random(2))
        plan = optimal_uniform_plan(placement)
        per_agent = plan.per_agent_moves(placement.homes, 15)
        assert sum(per_agent) == plan.total_moves

    def test_quarter_bound_formula(self):
        assert quarter_bound(16, 4) == 4
        assert quarter_bound(40, 8) == 20


class TestRendezvous:
    def _run(self, placement: Placement):
        agents = [RendezvousAgent(placement.agent_count) for _ in placement.homes]
        engine = Engine(placement, agents)
        engine.run()
        return engine, agents

    def test_aperiodic_all_gather(self):
        engine, agents = self._run(placement_from_distances((5, 7, 4, 8)))
        positions = set(engine.final_positions().values())
        assert len(positions) == 1
        assert all(agent.gathered for agent in agents)

    def test_periodic_detects_symmetry(self):
        # Figure 1(b)-style symmetric ring: rendezvous is unsolvable;
        # the agents detect it and stay home.
        placement = periodic_placement((1, 2, 3), 2)
        engine, agents = self._run(placement)
        assert all(agent.symmetric for agent in agents)
        assert all(not agent.gathered for agent in agents)
        assert set(engine.final_positions().values()) == set(placement.homes)

    def test_contrast_with_uniform_deployment(self):
        # The paper's headline contrast: on the same symmetric ring,
        # uniform deployment succeeds where rendezvous cannot.
        placement = periodic_placement((1, 2, 3), 2)
        _, agents = self._run(placement)
        assert all(agent.symmetric for agent in agents)
        for algorithm in ("known_k_full", "known_k_logspace", "unknown"):
            assert run_experiment(algorithm, placement).ok

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            RendezvousAgent(0)
