"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.ring.placement import Placement


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)


def brute_force_min_rotation_index(sequence) -> int:
    """Reference implementation for Booth's algorithm tests."""
    items = tuple(sequence)
    if not items:
        return 0
    best = 0
    for candidate in range(1, len(items)):
        rotated = items[candidate:] + items[:candidate]
        current = items[best:] + items[:best]
        if rotated < current:
            best = candidate
    return best


def brute_force_min_period(sequence) -> int:
    """Reference implementation for minimal rotation period."""
    items = tuple(sequence)
    for period in range(1, len(items) + 1):
        if len(items) % period == 0 and items[period:] + items[:period] == items:
            return period
    return len(items)


def small_random_placement(rng: random.Random, max_n: int = 48) -> Placement:
    """A random placement sized for fast engine tests."""
    n = rng.randint(6, max_n)
    k = rng.randint(2, max(2, min(n // 2, 10)))
    homes = tuple(rng.sample(range(n), k))
    return Placement(ring_size=n, homes=homes)
