"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random

import pytest

from repro.ring.placement import Placement

# Pinned Hypothesis profiles: property/stateful tests must never flake
# under CI load.  `deadline=None` removes the wall-clock-per-example
# limit (shared CI runners stall arbitrarily), and the `ci` profile is
# additionally derandomized so a CI run is a pure function of the code
# under test — no fresh random examples, no surprise-only-on-main
# failures.  Locally the randomized profile keeps hunting new examples.
# Guarded import: without hypothesis the property-test *files* fail,
# not the whole suite's collection.
try:
    from hypothesis import HealthCheck, settings
except ImportError:
    pass
else:
    settings.register_profile(
        "repro",
        deadline=None,
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "ci",
        settings.get_profile("repro"),
        derandomize=True,
    )
    settings.load_profile("ci" if os.environ.get("CI") else "repro")


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)


from reference_impls import (  # noqa: F401  (re-exported for older tests)
    brute_force_min_period,
    brute_force_min_rotation_index,
)


def small_random_placement(rng: random.Random, max_n: int = 48) -> Placement:
    """A random placement sized for fast engine tests."""
    n = rng.randint(6, max_n)
    k = rng.randint(2, max(2, min(n // 2, 10)))
    homes = tuple(rng.sample(range(n), k))
    return Placement(ring_size=n, homes=homes)
