"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.ring.placement import Placement


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)


from reference_impls import (  # noqa: F401  (re-exported for older tests)
    brute_force_min_period,
    brute_force_min_rotation_index,
)


def small_random_placement(rng: random.Random, max_n: int = 48) -> Placement:
    """A random placement sized for fast engine tests."""
    n = rng.randint(6, max_n)
    k = rng.randint(2, max(2, min(n // 2, 10)))
    homes = tuple(rng.sample(range(n), k))
    return Placement(ring_size=n, homes=homes)
