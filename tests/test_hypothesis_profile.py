"""Pin the Hypothesis profile conftest.py registers for the suite.

Stateful and property tests (engine state machines, spec round trips,
the parser fuzz tests) must not flake when a shared CI runner stalls:
the active profile has no per-example deadline, and the ``ci`` profile
is derandomized so CI runs are pure functions of the code under test.
"""

from __future__ import annotations

import os

from hypothesis import settings


def test_active_profile_has_no_deadline():
    assert settings().deadline is None


def test_ci_profile_is_registered_and_derandomized():
    ci = settings.get_profile("ci")
    assert ci.deadline is None
    assert ci.derandomize is True


def test_local_profile_is_registered():
    local = settings.get_profile("repro")
    assert local.deadline is None


def test_profile_selection_follows_ci_env():
    expected = "ci" if os.environ.get("CI") else "repro"
    assert settings._current_profile == expected
