"""Brute-force reference implementations shared by property tests.

Kept outside ``conftest.py`` because pytest inserts both ``tests/`` and
``benchmarks/`` on ``sys.path`` and each has a ``conftest`` module — a
plain ``from conftest import ...`` resolves to whichever directory was
collected first.  A uniquely-named module has no such collision.
"""

from __future__ import annotations


def brute_force_min_rotation_index(sequence) -> int:
    """Reference implementation for Booth's algorithm tests."""
    items = tuple(sequence)
    if not items:
        return 0
    best = 0
    for candidate in range(1, len(items)):
        rotated = items[candidate:] + items[:candidate]
        current = items[best:] + items[:best]
        if rotated < current:
            best = candidate
    return best


def brute_force_min_period(sequence) -> int:
    """Reference implementation for minimal rotation period."""
    items = tuple(sequence)
    for period in range(1, len(items) + 1):
        if len(items) % period == 0 and items[period:] + items[:period] == items:
            return period
    return len(items)
