"""Tests for the space-time timeline and JSON result serialisation."""

from __future__ import annotations

import pytest

from repro.analysis.timeline import Timeline, record_timeline
from repro.errors import ConfigurationError
from repro.experiments.runner import build_engine, run_experiment
from repro.experiments.serialize import (
    load_results,
    result_from_dict,
    result_to_dict,
    results_from_json,
    results_to_json,
    save_results,
)
from repro.ring.placement import Placement, equidistant_placement


class TestTimeline:
    def test_records_initial_and_final_rows(self):
        engine = build_engine("known_k_full", equidistant_placement(12, 3))
        timeline = record_timeline(engine)
        assert len(timeline.rows) >= 2
        assert engine.quiescent
        # Final row: agents halted on token nodes -> digits present.
        assert any(ch.isdigit() for ch in timeline.final_row)

    def test_final_row_is_uniform_spread(self):
        engine = build_engine("known_k_full", Placement(ring_size=12, homes=(0, 1, 2)))
        timeline = record_timeline(engine)
        digits = [i for i, ch in enumerate(timeline.final_row) if ch.isdigit()]
        gaps = sorted(
            (digits[(i + 1) % 3] - digits[i]) % 12 for i in range(3)
        )
        assert gaps == [4, 4, 4]

    def test_sampling_interval(self):
        engine = build_engine("known_k_full", equidistant_placement(12, 3))
        timeline = record_timeline(engine, sample_every=5)
        assert all(r % 5 == 0 for r in timeline.sampled_rounds[:-1])

    def test_render_limit(self):
        engine = build_engine("known_k_full", Placement(ring_size=10, homes=(0, 4)))
        timeline = record_timeline(engine)
        text = timeline.render(limit=2)
        assert "more rows" in text
        assert text.count("\n") == 2

    def test_token_glyph_after_departure(self):
        engine = build_engine("known_k_full", Placement(ring_size=8, homes=(0, 3)))
        engine.run_rounds(2)
        timeline = Timeline(ring_size=8)
        timeline.snapshot(2, engine.snapshot())
        assert "-" in timeline.rows[0]  # a token node left behind


class TestSerialization:
    def _result(self):
        return run_experiment("known_k_full", equidistant_placement(12, 3))

    def test_round_trip_dict(self):
        original = self._result()
        rebuilt = result_from_dict(result_to_dict(original))
        assert rebuilt == original

    def test_round_trip_json(self):
        results = [self._result(), run_experiment("unknown", Placement(9, (0, 4, 6)))]
        text = results_to_json(results)
        rebuilt = results_from_json(text)
        assert rebuilt == results

    def test_file_round_trip(self, tmp_path):
        results = [self._result()]
        path = tmp_path / "results.json"
        save_results(results, path)
        assert load_results(path) == results

    def test_bad_version_rejected(self):
        with pytest.raises(ConfigurationError):
            results_from_json('{"format_version": 99, "results": []}')

    def test_missing_key_rejected(self):
        with pytest.raises(ConfigurationError):
            result_from_dict({"algorithm": "known_k_full"})

    def test_json_is_stable(self):
        results = [self._result()]
        assert results_to_json(results) == results_to_json(results)
